#include "core/pim_aligner.hpp"

#include <algorithm>
#include <set>

#include "dram/dpu.hpp"

namespace pima::core {

std::size_t PimAligner::bases_per_row() const {
  return device_.geometry().columns / 2;
}

PimAligner::PimAligner(dram::Device& device, const dna::Sequence& reference,
                       const AlignerParams& params)
    : device_(device), reference_(reference), params_(params) {
  PIMA_CHECK(!reference.empty(), "empty reference");
  PIMA_CHECK(params_.seed_k >= 8 && params_.seed_k <= assembly::Kmer::kMaxK,
             "seed k out of range");
  const std::size_t b = bases_per_row();
  if (params_.window_overlap == 0)
    params_.window_overlap = b * 4 / 5;  // supports reads up to ~B/5 stride
  PIMA_CHECK(params_.window_overlap < b, "overlap must leave a stride");
  const std::size_t stride = b - params_.window_overlap;

  // Tile the reference into window rows. The last data row of every
  // sub-array is kept free as the query staging (temp) row.
  const std::size_t rows_per_sa = device.geometry().data_rows() - 1;
  std::size_t sa = 0, row = 0;
  for (std::size_t pos = 0; pos < reference.size(); pos += stride) {
    const std::size_t len = std::min(b, reference.size() - pos);
    if (len < params_.seed_k) break;
    Window w;
    w.subarray_flat = sa;
    w.row = row;
    w.ref_pos = pos;
    w.length = len;
    BitVector image(device.geometry().columns);
    image.copy_range_from(reference.to_bits(pos, len), 0);
    device.subarray(sa).write_row(row, image);
    windows_.push_back(w);
    if (++row == rows_per_sa) {
      row = 0;
      ++sa;
      PIMA_CHECK(sa < device.geometry().total_subarrays(),
                 "reference exceeds device capacity");
    }
    if (len < b) break;  // final partial window
  }

  // Controller-side seed index over every window position.
  for (std::uint32_t wi = 0; wi < windows_.size(); ++wi) {
    const Window& w = windows_[wi];
    for (std::size_t o = 0; o + params_.seed_k <= w.length; ++o) {
      auto& hits = seeds_[assembly::Kmer::from_sequence(
          reference_, w.ref_pos + o, params_.seed_k)];
      if (hits.size() < 8)
        hits.emplace_back(wi, static_cast<std::uint32_t>(o));
    }
  }
}

std::size_t PimAligner::subarrays_used() const {
  std::set<std::size_t> used;
  for (const auto& w : windows_) used.insert(w.subarray_flat);
  return used.size();
}

std::optional<std::size_t> PimAligner::verify(const Window& w,
                                              std::size_t offset,
                                              const dna::Sequence& read) {
  if (offset + read.size() > w.length) return std::nullopt;
  dram::Subarray& sa = device_.subarray(w.subarray_flat);
  const dram::RowAddr temp = sa.geometry().data_rows() - 1;

  // Stage the query aligned to the candidate offset; columns outside the
  // read span are ignored by the DPU's masked reduction.
  BitVector query(sa.geometry().columns);
  query.copy_range_from(read.to_bits(0, read.size()), 2 * offset);
  sa.write_row(temp, query);

  // Single-cycle row compare, then base-level Hamming distance via the
  // DPU pair-AND popcount over the read's bit range.
  const dram::RowAddr result = sa.compute_row(3);
  sa.compare_rows(temp, w.row, result);
  const std::size_t matching =
      dram::Dpu::popcount_pairs(sa, result, 2 * offset, read.size());
  return read.size() - matching;
}

std::vector<Alignment> PimAligner::align_all(const dna::Sequence& read) {
  std::vector<Alignment> out;
  if (read.size() < params_.seed_k) return out;

  const dna::Sequence rc = read.reverse_complement();
  std::set<std::pair<std::size_t, bool>> tried;  // (ref_pos, reverse)
  std::size_t verifications = 0;

  for (const bool reverse : {false, true}) {
    const dna::Sequence& q = reverse ? rc : read;
    for (std::size_t anchor = 0;
         anchor + params_.seed_k <= q.size() &&
         verifications < params_.max_candidates;
         anchor += params_.seed_k) {
      const auto it =
          seeds_.find(assembly::Kmer::from_sequence(q, anchor, params_.seed_k));
      if (it == seeds_.end()) continue;
      for (const auto& [wi, off] : it->second) {
        if (verifications >= params_.max_candidates) break;
        if (off < anchor) continue;
        const Window& w = windows_[wi];
        const std::size_t window_offset = off - anchor;
        // Only windows that hold the whole read count as candidates — the
        // same placement usually appears in several overlapping windows,
        // and a truncating one must not shadow a fitting duplicate.
        if (window_offset + q.size() > w.length) continue;
        const std::size_t ref_pos = w.ref_pos + window_offset;
        if (!tried.insert({ref_pos, reverse}).second) continue;
        ++verifications;
        const auto distance = verify(w, window_offset, q);
        if (distance && *distance <= params_.max_mismatches)
          out.push_back({ref_pos, reverse, *distance});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Alignment& a, const Alignment& b) {
    return std::tie(a.mismatches, a.reference_pos) <
           std::tie(b.mismatches, b.reference_pos);
  });
  return out;
}

std::optional<Alignment> PimAligner::align(const dna::Sequence& read) {
  const auto all = align_all(read);
  if (all.empty()) return std::nullopt;
  return all.front();
}

}  // namespace pima::core
