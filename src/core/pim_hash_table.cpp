#include "core/pim_hash_table.hpp"

#include "dram/dpu.hpp"
#include "runtime/shard.hpp"

namespace pima::core {

namespace {
// Secondary hash for the in-shard home slot, independent of the shard
// router so shard and slot choices are uncorrelated.
std::uint64_t slot_hash(const assembly::Kmer& km) {
  std::uint64_t z = km.hash() ^ 0xda942042e4dd58b5ull;
  z = (z ^ (z >> 29)) * 0xff51afd7ed558ccdull;
  return z ^ (z >> 32);
}
}  // namespace

PimHashTable::PimHashTable(dram::Device& device, std::size_t shards,
                           std::size_t first_subarray, MappingPolicy policy)
    : device_(&device),
      layout_(ShardLayout::for_geometry(device.geometry())),
      policy_(policy) {
  init(shards, first_subarray, policy);
}

PimHashTable::PimHashTable(runtime::DevicePool& pool, std::size_t shards,
                           std::size_t first_subarray, MappingPolicy policy)
    : pool_(&pool),
      layout_(ShardLayout::for_geometry(pool.geometry())),
      policy_(policy) {
  init(shards, first_subarray, policy);
}

void PimHashTable::init(std::size_t shards, std::size_t first_subarray,
                        MappingPolicy policy) {
  PIMA_CHECK(shards > 0, "need at least one shard");
  const std::size_t extra =
      policy == MappingPolicy::kCentralValues ? 1 : 0;
  PIMA_CHECK(
      first_subarray + shards + extra <= geometry().total_subarrays(),
      "shard range exceeds device");
  if (policy == MappingPolicy::kCentralValues) {
    central_value_flat_ = first_subarray + shards;
    const std::size_t counter_rows =
        (shards * layout_.kmer_rows + layout_.counters_per_row() - 1) /
        layout_.counters_per_row();
    PIMA_CHECK(counter_rows <= geometry().data_rows(),
               "central value array cannot hold every counter — use the "
               "correlated mapping for tables this large");
  }
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    Shard sh;
    sh.subarray_flat = first_subarray + s;
    sh.occupied.assign(layout_.kmer_rows, false);
    shards_.push_back(std::move(sh));
  }
}

const dram::Geometry& PimHashTable::geometry() const {
  return pool_ ? pool_->geometry() : device_->geometry();
}

dram::Subarray& PimHashTable::backing_subarray(std::size_t flat) {
  return pool_ ? pool_->subarray(flat) : device_->subarray(flat);
}

const dram::Subarray* PimHashTable::backing_subarray_if(
    std::size_t flat) const {
  return pool_ ? pool_->subarray_if(flat) : device_->subarray_if(flat);
}

dram::Subarray& PimHashTable::value_subarray(std::size_t shard_index) {
  if (policy_ == MappingPolicy::kCentralValues)
    return backing_subarray(central_value_flat_);
  return shard_subarray(shards_[shard_index]);
}

dram::RowAddr PimHashTable::value_row_for(std::size_t shard_index,
                                          std::size_t slot) const {
  if (policy_ == MappingPolicy::kCentralValues) {
    const std::size_t global = shard_index * layout_.kmer_rows + slot;
    return global / layout_.counters_per_row();
  }
  return layout_.value_row(slot);
}

dram::Subarray& PimHashTable::shard_subarray(const Shard& s) {
  return backing_subarray(s.subarray_flat);
}

std::size_t PimHashTable::capacity() const {
  return shards_.size() * layout_.kmer_rows;
}

std::size_t PimHashTable::shard_for(const assembly::Kmer& kmer) const {
  return static_cast<std::size_t>(kmer.hash() % shards_.size());
}

std::size_t PimHashTable::shard_subarray_flat(std::size_t shard) const {
  PIMA_CHECK(shard < shards_.size(), "shard index out of table");
  return shards_[shard].subarray_flat;
}

void PimHashTable::bind_key_length(std::size_t k) {
  PIMA_CHECK(k_ == 0 || k_ == k, "mixed k within one table");
  PIMA_CHECK(k >= 1 && k <= assembly::Kmer::kMaxK, "k out of range");
  k_ = k;
}

std::size_t PimHashTable::distinct_kmers() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) n += sh.entries;
  return n;
}

std::size_t PimHashTable::home_slot(const assembly::Kmer& kmer) const {
  return static_cast<std::size_t>(slot_hash(kmer) % layout_.kmer_rows);
}

bool PimHashTable::probe_matches(const Shard& shard, std::size_t slot,
                                 std::size_t k) {
  // PIM_XNOR (Fig. 7): stage + single-cycle two-row XNOR into a compute
  // row, then DPU AND-reduction over the key bits. A false probe result
  // corrupts the table (duplicate keys or phantom increments), so this is
  // the op the recovery layer guards when fault-aware execution is on.
  dram::Subarray& sa = shard_subarray(shard);
  const dram::RowAddr result = sa.compute_row(3);
  if (recovery_ != nullptr) {
    recovery_->executor_for(shard.subarray_flat)
        .compare_rows(layout_.temp_row(0), layout_.kmer_row(slot), result);
  } else {
    sa.compare_rows(layout_.temp_row(0), layout_.kmer_row(slot), result);
  }
  return dram::Dpu::and_reduce(sa, result, 2 * k);
}

std::uint32_t PimHashTable::read_counter(std::size_t shard_index,
                                         std::size_t slot) {
  dram::Subarray& sa = value_subarray(shard_index);
  const dram::RowAddr addr = value_row_for(shard_index, slot);
  const std::size_t global = policy_ == MappingPolicy::kCentralValues
                                 ? shard_index * layout_.kmer_rows + slot
                                 : slot;
  const std::size_t off =
      (global % layout_.counters_per_row()) * layout_.counter_bits;
  const BitVector& row = sa.read_row(addr);
  std::uint32_t v = 0;
  for (std::size_t b = 0; b < layout_.counter_bits; ++b)
    if (row.get(off + b)) v |= std::uint32_t{1} << b;
  return v;
}

void PimHashTable::write_counter(std::size_t shard_index, std::size_t slot,
                                 std::uint32_t v) {
  dram::Subarray& sa = value_subarray(shard_index);
  const dram::RowAddr addr = value_row_for(shard_index, slot);
  const std::size_t global = policy_ == MappingPolicy::kCentralValues
                                 ? shard_index * layout_.kmer_rows + slot
                                 : slot;
  const std::size_t off =
      (global % layout_.counters_per_row()) * layout_.counter_bits;
  BitVector row = sa.peek_row(addr);
  for (std::size_t b = 0; b < layout_.counter_bits; ++b)
    row.set(off + b, (v >> b) & 1u);
  sa.write_row(addr, row);
}

std::uint32_t PimHashTable::insert_or_increment(const assembly::Kmer& kmer) {
  if (k_ == 0) k_ = kmer.k();
  PIMA_CHECK(kmer.k() == k_, "mixed k within one table");
  PIMA_CHECK(2 * k_ <= geometry().columns,
             "k-mer exceeds row width (max 128 bp)");

  const std::size_t shard_index = shard_for(kmer);
  Shard& shard = shards_[shard_index];
  dram::Subarray& sa = shard_subarray(shard);

  // Stage the query into the temp region (MEM_insert of the new query,
  // Fig. 6). The row image is the 2-bit packed k-mer, zero padded.
  BitVector query(geometry().columns);
  query.copy_range_from(kmer.to_sequence().to_bits(0, k_), 0);
  sa.write_row(layout_.temp_row(0), query);

  std::size_t slot = home_slot(kmer);
  for (std::size_t probes = 0; probes < layout_.kmer_rows; ++probes) {
    if (!shard.occupied[slot]) {
      // MEM_insert(k_mer, 1): RowClone the staged query into the key slot
      // and set its counter.
      sa.aap_copy(layout_.temp_row(0), layout_.kmer_row(slot));
      shard.occupied[slot] = true;
      ++shard.entries;
      write_counter(shard_index, slot, 1);
      return 1;
    }
    if (probe_matches(shard, slot, k_)) {
      // PIM_Add(k_mer, 1) + MEM_insert(k_mer, New_freq): saturating 8-bit
      // increment through the DPU read-modify-write path.
      const std::uint32_t max =
          (std::uint32_t{1} << layout_.counter_bits) - 1;
      std::uint32_t v = read_counter(shard_index, slot);
      if (v < max) ++v;
      write_counter(shard_index, slot, v);
      return v;
    }
    slot = (slot + 1) % layout_.kmer_rows;
  }
  throw SimulationError(
      "hash shard full: " + std::to_string(layout_.kmer_rows) +
      " keys — use more shards for this workload");
}

std::optional<std::uint32_t> PimHashTable::lookup(const assembly::Kmer& kmer) {
  if (k_ == 0 || kmer.k() != k_) return std::nullopt;
  const std::size_t shard_index = shard_for(kmer);
  Shard& shard = shards_[shard_index];
  dram::Subarray& sa = shard_subarray(shard);

  BitVector query(geometry().columns);
  query.copy_range_from(kmer.to_sequence().to_bits(0, k_), 0);
  sa.write_row(layout_.temp_row(0), query);

  std::size_t slot = home_slot(kmer);
  for (std::size_t probes = 0; probes < layout_.kmer_rows; ++probes) {
    if (!shard.occupied[slot]) return std::nullopt;
    if (probe_matches(shard, slot, k_)) return read_counter(shard_index, slot);
    slot = (slot + 1) % layout_.kmer_rows;
  }
  return std::nullopt;
}

std::optional<std::pair<assembly::Kmer, std::uint32_t>>
PimHashTable::peek_slot(std::size_t shard, std::size_t slot) const {
  PIMA_CHECK(shard < shards_.size(), "shard index out of table");
  PIMA_CHECK(slot < layout_.kmer_rows, "slot index out of shard");
  const Shard& sh = shards_[shard];
  if (!sh.occupied[slot] || k_ == 0) return std::nullopt;
  const dram::Subarray* sa_ptr = backing_subarray_if(sh.subarray_flat);
  PIMA_CHECK(sa_ptr != nullptr, "occupied shard must be instantiated");
  const BitVector& key_row = sa_ptr->peek_row(layout_.kmer_row(slot));
  const auto seq = dna::Sequence::from_bits(key_row, 0, k_);
  const assembly::Kmer km = assembly::Kmer::from_sequence(seq, 0, k_);
  const dram::Subarray* val_ptr =
      policy_ == MappingPolicy::kCentralValues
          ? backing_subarray_if(central_value_flat_)
          : sa_ptr;
  PIMA_CHECK(val_ptr != nullptr, "value array must be instantiated");
  const std::size_t global = policy_ == MappingPolicy::kCentralValues
                                 ? shard * layout_.kmer_rows + slot
                                 : slot;
  const BitVector& val_row = val_ptr->peek_row(value_row_for(shard, slot));
  const std::size_t off =
      (global % layout_.counters_per_row()) * layout_.counter_bits;
  std::uint32_t v = 0;
  for (std::size_t b = 0; b < layout_.counter_bits; ++b)
    if (val_row.get(off + b)) v |= std::uint32_t{1} << b;
  return std::make_pair(km, v);
}

std::vector<std::pair<assembly::Kmer, std::uint32_t>>
PimHashTable::extract_shard(std::size_t shard) {
  PIMA_CHECK(shard < shards_.size(), "shard index out of table");
  std::vector<std::pair<assembly::Kmer, std::uint32_t>> out;
  Shard& sh = shards_[shard];
  out.reserve(sh.entries);
  if (sh.entries == 0) return out;
  dram::Subarray& sa = shard_subarray(sh);
  for (std::size_t slot = 0; slot < layout_.kmer_rows; ++slot) {
    if (!sh.occupied[slot]) continue;
    const BitVector& key_row = sa.read_row(layout_.kmer_row(slot));
    const auto seq = dna::Sequence::from_bits(key_row, 0, k_);
    out.emplace_back(assembly::Kmer::from_sequence(seq, 0, k_),
                     read_counter(shard, slot));
  }
  return out;
}

std::vector<std::pair<assembly::Kmer, std::uint32_t>>
PimHashTable::extract() {
  std::vector<std::pair<assembly::Kmer, std::uint32_t>> out;
  out.reserve(distinct_kmers());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    auto part = extract_shard(s);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

}  // namespace pima::core
