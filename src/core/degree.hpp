// In-memory vertex-degree computation (paper Fig. 8, "mapping" stage).
//
// The adjacency rows of an edge block are mapped onto consecutive sub-array
// rows; the degree of every destination vertex is the column sum of those
// 1-bit rows. PIM-Assembler computes the sums with a carry-save reduction:
// every three rows are compressed to a (Carry, Sum) pair — one TRA for the
// carry, two two-row XORs for the sum — written back to reserved rows; the
// resulting multi-bit vertical numbers are then combined with bit-serial
// additions (2 compute cycles per bit) until one number per column remains.
// All 256 columns advance in parallel at every step.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph_map.hpp"
#include "dram/device.hpp"
#include "dram/subarray.hpp"
#include "runtime/engine.hpp"

namespace pima::runtime {
class DevicePool;   // runtime/shard.hpp
class PoolRunner;
}  // namespace pima::runtime

namespace pima::core {

/// Column sums of `rows` (each a 1-bit-per-column adjacency row) computed
/// entirely with PIM operations inside `sa`. Returns one sum per column.
/// Requires enough free data rows for inputs + carry-save intermediates
/// (≈ 3× the input row count).
std::vector<std::uint32_t> pim_column_sums(dram::Subarray& sa,
                                           const std::vector<BitVector>& rows);

/// Degrees of every vertex of `g`, computed block-by-block on `device`
/// (block (i,j) of the partition runs on its own sub-array; per-vertex
/// partial degrees from the M blocks of a row/column are accumulated by
/// the controller).
struct DegreeResult {
  std::vector<std::uint32_t> in_degree;
  std::vector<std::uint32_t> out_degree;
};

/// With an engine, each block's column-sum kernels are dispatched to the
/// channel owning the block's sub-array and run concurrently; per-vertex
/// partial degrees are accumulated by the controller in block order after
/// the barrier, so the result (and every CommandStats) is bit-identical to
/// the serial path. `engine == nullptr` runs the blocks inline.
DegreeResult pim_degrees(dram::Device& device,
                         const assembly::DeBruijnGraph& g,
                         const GraphPartition& partition,
                         runtime::Engine* engine = nullptr);

/// Pool-backed variant: block sub-arrays resolve through the pool's owner
/// routing and kernels dispatch through the pool runner (one engine per
/// device), so the M² edge blocks spread over every device. Accumulation
/// stays in block order — results are bit-identical for any device count.
DegreeResult pim_degrees(runtime::DevicePool& pool,
                         const assembly::DeBruijnGraph& g,
                         const GraphPartition& partition,
                         runtime::PoolRunner* runner = nullptr);

}  // namespace pima::core
