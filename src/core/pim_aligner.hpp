// In-DRAM short-read alignment (seed-and-verify on the PIM substrate).
//
// The paper's introduction situates PIM-Assembler against PIM short-read
// *alignment* accelerators (AlignS and the CPU/GPU/FPGA aligners it cites)
// and notes that the same comparison-heavy structure dominates both
// problems. This module shows the platform covering that workload too:
//
//   * the reference (e.g. assembled contigs) is tiled into 128 bp windows
//     stored one-per-row across sub-arrays (the same Fig. 6 row discipline
//     as the hash shards),
//   * a controller-side k-mer seed index maps a read to candidate
//     (window, offset) placements,
//   * each candidate is verified IN MEMORY: the read is staged into a temp
//     row, the single-cycle two-row XNOR produces per-column match bits
//     against the window row, and the DPU popcount yields the Hamming
//     distance directly — one row cycle + one reduce per candidate,
//     regardless of read length.
//
// Reads from either strand are handled by also seeding the reverse
// complement. Alignment is gapless (substitutions only), matching the
// error model of the paper's short-read setting.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "assembly/kmer.hpp"
#include "dna/sequence.hpp"
#include "dram/device.hpp"

namespace pima::core {

struct AlignerParams {
  std::size_t seed_k = 16;        ///< seed k-mer length
  std::size_t window_overlap = 0; ///< extra overlap between reference rows
                                  ///  (≥ read length − 1 to never miss a
                                  ///  placement; set by the constructor if 0)
  std::size_t max_mismatches = 3; ///< report alignments within this distance
  std::size_t max_candidates = 16;///< verify at most this many seeds/read
};

struct Alignment {
  std::size_t reference_pos = 0;  ///< 0-based position in the reference
  bool reverse = false;           ///< read aligned as reverse complement
  std::size_t mismatches = 0;     ///< Hamming distance
};

/// Gapless in-memory read aligner over one reference sequence.
class PimAligner {
 public:
  /// Tiles `reference` into rows of `device` starting at sub-array
  /// `first_subarray` (using as many sub-arrays as the tiling needs).
  PimAligner(dram::Device& device, const dna::Sequence& reference,
             const AlignerParams& params = {});

  /// Best alignment (fewest mismatches ≤ max_mismatches), or nullopt.
  std::optional<Alignment> align(const dna::Sequence& read);

  /// Every acceptable alignment, sorted by mismatch count.
  std::vector<Alignment> align_all(const dna::Sequence& read);

  std::size_t window_count() const { return windows_.size(); }
  std::size_t subarrays_used() const;

 private:
  struct Window {
    std::size_t subarray_flat;
    dram::RowAddr row;
    std::size_t ref_pos;   ///< reference position of the window start
    std::size_t length;    ///< bases stored (≤ bases_per_row)
  };

  std::size_t bases_per_row() const;
  /// Verifies a candidate placement with one row compare + DPU popcount;
  /// returns the Hamming distance, or nullopt if out of window bounds.
  std::optional<std::size_t> verify(const Window& w, std::size_t offset,
                                    const dna::Sequence& read);

  dram::Device& device_;
  dna::Sequence reference_;
  AlignerParams params_;
  std::vector<Window> windows_;
  /// seed k-mer → (window index, offset within window) candidates.
  std::unordered_map<assembly::Kmer,
                     std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      seeds_;
};

}  // namespace pima::core
