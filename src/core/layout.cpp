#include "core/layout.hpp"

#include "common/error.hpp"

namespace pima::core {

ShardLayout ShardLayout::for_geometry(const dram::Geometry& g) {
  ShardLayout l{};
  l.temp_rows = 8;
  l.columns = g.columns;
  const std::size_t data = g.data_rows();
  PIMA_CHECK(data > l.temp_rows + 2, "sub-array too small for a hash shard");
  l.counter_bits = 8;
  PIMA_CHECK(g.columns >= l.counter_bits, "row narrower than one counter");
  const std::size_t per_row = g.columns / l.counter_bits;
  // Solve kmer_rows + ceil(kmer_rows/per_row) + temp ≤ data.
  std::size_t keys = (data - l.temp_rows) * per_row / (per_row + 1);
  while (keys + (keys + per_row - 1) / per_row + l.temp_rows > data) --keys;
  l.kmer_rows = keys;
  l.value_rows = (keys + per_row - 1) / per_row;
  return l;
}

dram::RowAddr ShardLayout::kmer_row(std::size_t slot) const {
  PIMA_CHECK(slot < kmer_rows, "key slot out of shard");
  return slot;
}

dram::RowAddr ShardLayout::value_row(std::size_t slot) const {
  PIMA_CHECK(slot < kmer_rows, "key slot out of shard");
  return kmer_rows + slot / counters_per_row();
}

std::size_t ShardLayout::value_bit_offset(std::size_t slot) const {
  return (slot % counters_per_row()) * counter_bits;
}

dram::RowAddr ShardLayout::temp_row(std::size_t t) const {
  PIMA_CHECK(t < temp_rows, "temp slot out of shard");
  return kmer_rows + value_rows + t;
}

}  // namespace pima::core
