// The process-isolated pipeline body (DESIGN.md §15): the same three
// stages as pipeline.cpp, but every device shard lives in its own
// pima_devd child under the runtime::ProcSupervisor. The controller logic
// — k-mer routing, graph construction, partition choice, walks, every
// stat/metric/trace fold — stays in the parent and is line-for-line the
// in-process algorithm; only command *execution* crosses the process
// boundary, as journaled NDJSON requests. That split is the determinism
// argument: a worker's device state is a pure function of its request
// journal, so a crash + replay lands on the exact pre-crash state, and a
// run with K worker crashes produces bit-identical contigs, per-stage
// DeviceStats and model-class metrics to a crash-free (or in-process) run.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "core/degree.hpp"
#include "core/pipeline_detail.hpp"
#include "core/shard_worker.hpp"
#include "dram/isa.hpp"
#include "dram/trace.hpp"
#include "net/json.hpp"
#include "runtime/engine.hpp"
#include "runtime/procpool.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/shard.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/session.hpp"
#include "telemetry/telemetry.hpp"

namespace pima::core::detail {

namespace {

// Mirrors the engine's private resolution of channels == 0 so the parent
// can route k-mer batches to the exact channel the worker's engine owns.
std::size_t resolve_channels(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

net::Json make_op(const char* name) {
  net::Json j = net::Json::object();
  j.set("op", name);
  return j;
}

// Barrier over every worker, drained in device index order. Rethrows the
// first typed failure after all workers drained — the PoolRunner::drain
// discipline (lowest device wins). A degraded pool aborts immediately:
// there is nothing left to drain.
void drain_all(runtime::ProcSupervisor& sup) {
  std::exception_ptr first;
  for (std::size_t d = 0; d < sup.devices(); ++d) {
    try {
      sup.rpc(d, make_op("drain"));
    } catch (const runtime::ProcPoolDegradedError&) {
      throw;
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

struct FlatStats {
  std::size_t flat = 0;
  dram::CommandStats stats;
};

// One stats round-trip per worker. Workers emit their touched sub-arrays
// in ascending flat order (shard_worker.cpp), which the folds below rely
// on for their merge cursors.
std::vector<std::vector<FlatStats>> collect_stats(
    runtime::ProcSupervisor& sup) {
  std::vector<std::vector<FlatStats>> per(sup.devices());
  for (std::size_t d = 0; d < sup.devices(); ++d) {
    const net::Json resp = sup.query(d, make_op("stats"));
    for (const auto& entry : resp.get("subarrays").items()) {
      FlatStats fs;
      fs.flat = static_cast<std::size_t>(entry.get_uint64("flat"));
      const auto& counts = entry.get("counts").items();
      for (std::size_t i = 0;
           i < dram::kCommandKindCount && i < counts.size(); ++i)
        fs.stats.counts[i] = static_cast<std::size_t>(counts[i].as_uint64());
      fs.stats.busy_ns = entry.get_number("busy_ns");
      fs.stats.energy_pj = entry.get_number("energy_pj");
      per[d].push_back(std::move(fs));
    }
  }
  return per;
}

struct StageFold {
  dram::DeviceStats device;
  dram::CommandStats commands;
};

// The DevicePool::roll_up / command_roll_up folds, reproduced over the
// wire stats: iterate *logical* flat order 0..total-1, resolve the owner,
// fold — the identical double-precision operation sequence, so the
// roll-ups are bitwise equal to the in-process run.
StageFold fold_stage(runtime::ProcSupervisor& sup, const runtime::ShardPlan& plan,
                     std::size_t total_subarrays) {
  const auto per = collect_stats(sup);
  std::vector<std::size_t> cursor(per.size(), 0);
  StageFold fold;
  for (std::size_t flat = 0; flat < total_subarrays; ++flat) {
    const std::size_t d = plan.owner_of(flat);
    auto& c = cursor[d];
    while (c < per[d].size() && per[d][c].flat < flat) ++c;
    if (c >= per[d].size() || per[d][c].flat != flat) continue;
    const dram::CommandStats& st = per[d][c].stats;
    // Workers already skip zero-command sub-arrays (fold identity).
    ++fold.device.subarrays_used;
    fold.device.time_ns = std::max(fold.device.time_ns, st.busy_ns);
    fold.device.serial_ns += st.busy_ns;
    fold.device.energy_pj += st.energy_pj;
    fold.device.commands += st.total_commands();
    fold.commands.merge_serial(st);
  }
  return fold;
}

void clear_all_stats(runtime::ProcSupervisor& sup) {
  for (std::size_t d = 0; d < sup.devices(); ++d)
    sup.rpc(d, make_op("clear_stats"));
}

// Splits a program slice by owning device in program order and ships each
// non-empty sub-stream as one `program` request — exactly the sub-streams
// PoolRunner::submit_program's sequence-keyed Exchange produces, so per
// sub-array command order is the single-device order.
void submit_program_sliced(runtime::ProcSupervisor& sup,
                           const runtime::ShardPlan& plan,
                           dram::Program program) {
  std::vector<dram::Program> per(sup.devices());
  for (auto& inst : program)
    per[plan.owner_of(inst.subarray)].push_back(std::move(inst));
  for (std::size_t d = 0; d < per.size(); ++d) {
    if (per[d].empty()) continue;
    net::Json req = make_op("program");
    req.set("text", dram::to_text(per[d]));
    sup.rpc(d, req);
  }
}

// The isolated twin of submit_kmer_stream (pipeline.cpp): identical
// routing — shard = hash(canonical) % shards, flat = shard, owner =
// flat % devices, channel = flat % channels — and identical per-slot
// batching, but a full batch becomes a `kmers` request instead of an
// engine submit. Per-shard insert order is read-stream order either way.
void submit_kmer_stream_isolated(runtime::ProcSupervisor& sup,
                                 const runtime::ShardPlan& plan,
                                 std::size_t channels, std::size_t hash_shards,
                                 const std::vector<dna::Sequence>& reads,
                                 std::size_t k,
                                 const runtime::CancelToken* cancel) {
  constexpr std::size_t kKmerBatch = 128;
  std::vector<std::vector<std::uint64_t>> pending(sup.devices() * channels);
  auto flush = [&](std::size_t device, std::size_t channel) {
    auto& batch = pending[device * channels + channel];
    if (batch.empty()) return;
    net::Json req = make_op("kmers");
    req.set("channel", static_cast<std::uint64_t>(channel));
    net::Json arr = net::Json::array();
    for (const std::uint64_t packed : batch) arr.push_back(net::Json(packed));
    req.set("kmers", std::move(arr));
    sup.rpc(device, req);
    batch.clear();
    batch.reserve(kKmerBatch);
  };

  telemetry::Counter* reads_ctr = nullptr;
  telemetry::Counter* kmers_ctr = nullptr;
  if (telemetry::metrics_enabled()) {
    auto& registry = telemetry::metrics();
    reads_ctr = &registry.counter(telemetry::kReadsTotal,
                                  "reads streamed through k-mer analysis");
    kmers_ctr =
        &registry.counter(telemetry::kKmersTotal, "k-mer windows submitted");
  }

  for (const auto& read : reads) {
    if (cancel != nullptr) cancel->throw_if_requested();
    if (read.size() < k) {
      if (reads_ctr != nullptr) reads_ctr->increment();
      continue;
    }
    assembly::Kmer window = assembly::Kmer::from_sequence(read, 0, k);
    for (std::size_t i = 0;; ++i) {
      const std::size_t flat =
          static_cast<std::size_t>(window.hash() % hash_shards);
      const std::size_t device = plan.owner_of(flat);
      const std::size_t channel = flat % channels;
      auto& batch = pending[device * channels + channel];
      batch.push_back(window.packed());
      if (batch.size() >= kKmerBatch) flush(device, channel);
      if (i + k >= read.size()) break;
      window = window.rolled(read.at(i + k));
    }
    if (reads_ctr != nullptr) {
      reads_ctr->increment();
      kmers_ctr->add(static_cast<double>(read.size() - k + 1));
    }
  }
  for (std::size_t d = 0; d < sup.devices(); ++d)
    for (std::size_t c = 0; c < channels; ++c) flush(d, c);
  drain_all(sup);
}

}  // namespace

PipelineResult run_pipeline_isolated(dram::Device& device,
                                     const std::vector<dna::Sequence>& reads,
                                     const PipelineOptions& options) {
  if (options.fault.enabled() ||
      options.recovery.mode != runtime::RecoveryMode::kOff)
    throw SimulationError(
        "process isolation with fault injection or recovery is unsupported: "
        "the fault model's per-sub-array RNG streams and the recovery "
        "layer's probe routing are in-process state the worker init request "
        "does not carry — run --isolate fault-free, or drop --isolate");

  PipelineResult result;
  const dram::Geometry& geometry = device.geometry();
  const runtime::ShardPlan plan{options.devices};
  const std::size_t total = geometry.total_subarrays();
  const std::size_t channels = resolve_channels(options.threads);

  PIMA_TEL_NAME_TRACK(runtime::Engine::kMainTrack, "main");
  PIMA_TEL_SET_THREAD_TRACK(runtime::Engine::kMainTrack);
  PIMA_TEL_SPAN("pipeline");
  if (telemetry::metrics_enabled())
    telemetry::metrics()
        .counter(telemetry::kReadsExpected, "reads in the input stream")
        .add(static_cast<double>(reads.size()));
  const auto export_stage = [&](const char* stage,
                                const dram::DeviceStats& st,
                                const dram::CommandStats& cmds) {
    if (!telemetry::metrics_enabled()) return;
    auto& registry = telemetry::metrics();
    const telemetry::Labels labels = {{"stage", stage}};
    registry
        .counter("pima_stage_commands_total", "DRAM commands per stage",
                 labels)
        .add(static_cast<double>(st.commands));
    registry
        .counter("pima_stage_time_ns_total",
                 "simulated critical-path time per stage (ns)", labels)
        .add(st.time_ns);
    registry
        .counter("pima_stage_energy_pj_total",
                 "simulated energy per stage (pJ)", labels)
        .add(st.energy_pj);
    registry
        .gauge("pima_stage_subarrays_used", "sub-arrays touched per stage",
               labels)
        .set(static_cast<double>(st.subarrays_used));
    telemetry::add_breakdown_metrics(
        registry, dram::breakdown_from_stats(cmds, geometry.columns,
                                             device.technology()));
  };
  std::unique_ptr<telemetry::ProgressReporter> progress;
  if (options.progress_interval_s > 0.0)
    progress = std::make_unique<telemetry::ProgressReporter>(
        telemetry::metrics(),
        telemetry::ProgressReporter::Options{options.progress_interval_s,
                                             nullptr});

  // ---- Checkpoint/resume plumbing (shared format with pipeline.cpp: an
  // isolated run resumes an in-process one and vice versa) ----
  const runtime::CheckpointFingerprint fingerprint =
      make_fingerprint(geometry, options);
  const std::string ckpt_path = options.checkpoint_dir.empty()
                                    ? std::string{}
                                    : options.checkpoint_dir + "/pipeline.ckpt";
  runtime::PipelineSnapshot snap;
  snap.fingerprint = fingerprint;
  std::uint32_t resume_stage = 0;
  if (options.resume) {
    PIMA_CHECK(!options.checkpoint_dir.empty(),
               "resume requires checkpoint_dir");
    if (std::ifstream probe(ckpt_path); probe.good()) {
      snap = runtime::load_checkpoint(ckpt_path);
      runtime::validate_compatible(snap, fingerprint);
      resume_stage = snap.stages_done;
    }
  }
  const runtime::FaultStats base_fault = snap.fault_stats;
  const auto write_checkpoint = [&](std::uint32_t stage) {
    if (ckpt_path.empty()) return;
    snap.stages_done = stage;
    snap.fault_stats = base_fault;
    runtime::save_checkpoint(ckpt_path, snap);
    if (options.on_checkpoint) options.on_checkpoint(stage, ckpt_path);
  };
  // A fresh run must not trip over shard checkpoints a previous run of a
  // different configuration left in the directory — only a resumed run may
  // inherit them (fingerprint-validated per worker on spawn).
  if (resume_stage == 0 && !options.checkpoint_dir.empty()) {
    for (std::size_t d = 0; d < options.devices; ++d) {
      std::error_code ec;
      std::filesystem::remove(options.checkpoint_dir + "/shard-" +
                                  std::to_string(d) + ".ckpt",
                              ec);
    }
  }

  // ---- The worker pool ----
  runtime::ProcPoolOptions pool_options;
  pool_options.devices = options.devices;
  pool_options.devd_path = options.isolate_opts.devd_path;
  pool_options.liveness_timeout_s = options.isolate_opts.liveness_timeout_s;
  pool_options.restart_budget = options.isolate_opts.restart_budget;
  pool_options.restart_backoff_ms = options.isolate_opts.restart_backoff_ms;
  // A traced run must keep the whole journal: a restarted worker rebuilds
  // its trace sinks only by replaying every command since init.
  pool_options.journal_truncation = !options.capture_trace;
  pool_options.checkpoint_dir = options.checkpoint_dir;
  pool_options.fingerprint = fingerprint;
  pool_options.child_iofault = options.isolate_opts.child_iofault;
  runtime::ProcSupervisor sup(
      pool_options, [&](std::size_t d) {
        WorkerInit init;
        init.geometry = geometry;
        init.technology = device.technology();
        init.device = d;
        init.devices = options.devices;
        init.k = options.k;
        init.hash_shards = options.hash_shards;
        init.channels = channels;
        init.queue_capacity = options.queue_capacity;
        init.capture_trace = options.capture_trace;
        // Stitched tracing: when the controller captures spans, the workers
        // do too; the supervisor harvests their buffers at stage boundaries.
        init.trace_spans = telemetry::tracer().enabled();
        init.stall_timeout_ms = options.stall_timeout_ms;
        return worker_init_to_json(init);
      });
  sup.start();
  if (resume_stage > 0) sup.mark_stage_done(resume_stage);

  // ---- Stage 1: k-mer analysis (Hashmap(S, k)) ----
  std::vector<std::pair<assembly::Kmer, std::uint32_t>> entries;
  if (resume_stage >= 1) {
    entries = snap.kmer_entries;
    result.distinct_kmers = snap.distinct_kmers;
    result.hashmap = {snap.hashmap, "hashmap"};
  } else {
    PIMA_TEL_SPAN("stage:hashmap");
    if (options.cancel != nullptr) options.cancel->throw_if_requested();
    submit_kmer_stream_isolated(sup, plan, channels, options.hash_shards,
                                reads, options.k, options.cancel);
    // K-mer count shuffle: each owner streams its shards back through the
    // stage-boundary exchange, merged by shard index — identical to
    // PimHashTable::extract() order for every device count.
    runtime::Exchange<std::pair<assembly::Kmer, std::uint32_t>> shuffle(
        options.devices);
    for (std::size_t s = 0; s < options.hash_shards; ++s) {
      const std::size_t owner = plan.owner_of(s);
      net::Json req = make_op("extract");
      req.set("shard", static_cast<std::uint64_t>(s));
      const net::Json resp = sup.query(owner, req);
      for (const auto& pair : resp.get("entries").items())
        shuffle.push(owner, 0, s,
                     {assembly::Kmer(pair.items()[0].as_uint64(), options.k),
                      static_cast<std::uint32_t>(pair.items()[1].as_uint64())});
    }
    entries = shuffle.gather(0);
    result.distinct_kmers = 0;
    for (std::size_t d = 0; d < sup.devices(); ++d)
      result.distinct_kmers += static_cast<std::size_t>(
          sup.query(d, make_op("distinct")).get_uint64("value"));
    const StageFold fold = fold_stage(sup, plan, total);
    result.hashmap = {fold.device, "hashmap"};
    export_stage("hashmap", result.hashmap.device, fold.commands);
    clear_all_stats(sup);
    snap.distinct_kmers = result.distinct_kmers;
    snap.kmer_entries = entries;
    snap.hashmap = result.hashmap.device;
    sup.mark_stage_done(1);
    write_checkpoint(1);
  }

  // ---- Stage 2a: de Bruijn construction (DeBruijn(Hashmap, k)) ----
  if (resume_stage >= 2) {
    result.graph = assembly::DeBruijnGraph::from_edges(snap.graph_edges);
    result.debruijn = {snap.debruijn, "debruijn"};
  } else {
    PIMA_TEL_SPAN("stage:debruijn");
    if (options.cancel != nullptr) options.cancel->throw_if_requested();
    assembly::KmerCounter counter(entries.size());
    for (const auto& [km, freq] : entries) counter.insert_with_count(km, freq);
    result.graph = assembly::DeBruijnGraph::from_counter(
        counter, options.use_multiplicity);
    const auto& graph = result.graph;
    const std::size_t graph_base = options.hash_shards;
    const std::size_t graph_arrays = std::max<std::size_t>(
        1, std::min(options.hash_shards, total - graph_base));
    const std::size_t data_rows = geometry.data_rows();
    const BitVector row_image(geometry.columns);
    constexpr std::size_t kProgramSlice = 8192;
    dram::Program inserts;
    inserts.reserve(kProgramSlice);
    std::size_t rr = 0;
    auto mem_insert = [&] {
      dram::Instruction inst;
      inst.op = dram::Opcode::kRowWrite;
      inst.subarray = graph_base + (rr++ % graph_arrays);
      inst.src1 = (rr / graph_arrays) % data_rows;
      inst.payload = row_image;
      inserts.push_back(std::move(inst));
      if (inserts.size() >= kProgramSlice) {
        if (options.cancel != nullptr) options.cancel->throw_if_requested();
        submit_program_sliced(sup, plan, std::move(inserts));
        inserts = {};
        inserts.reserve(kProgramSlice);
      }
    };
    for (std::size_t e = 0; e < graph.edge_count(); ++e) {
      mem_insert();  // node 1 (prefix) insert
      mem_insert();  // node 2 (suffix) insert
      mem_insert();  // edge-list insert
    }
    submit_program_sliced(sup, plan, std::move(inserts));
    drain_all(sup);
    const StageFold fold = fold_stage(sup, plan, total);
    result.debruijn = {fold.device, "debruijn"};
    export_stage("debruijn", result.debruijn.device, fold.commands);
    clear_all_stats(sup);
    snap.graph_edges.clear();
    snap.graph_edges.reserve(graph.edge_count());
    for (const auto& e : graph.edges())
      snap.graph_edges.emplace_back(e.kmer, e.multiplicity);
    snap.debruijn = result.debruijn.device;
    sup.mark_stage_done(2);
    write_checkpoint(2);
  }
  const auto& graph = result.graph;
  result.graph_nodes = graph.node_count();
  result.graph_edges = graph.edge_count();

  // ---- Stage 2b: traversal (Traverse(G)) ----
  if (resume_stage >= 3) {
    result.contigs = snap.contigs;
    result.traverse = {snap.traverse, "traverse"};
  } else {
    PIMA_TEL_SPAN("stage:traverse");
    if (options.cancel != nullptr) options.cancel->throw_if_requested();
    const GraphPartition partition =
        partition_fitting(graph, geometry, options.graph_intervals);
    // The pim_degrees block walk (degree.cpp), with each block's kernel
    // shipped as a `degree_block` request to the sub-array's owner. The
    // parent does not need the sums — the pipeline discards them — but
    // the workers run the full carry-save reduction, so the device
    // traffic matches the in-process run command for command.
    {
      const std::size_t width = geometry.columns;
      const auto m = partition.intervals;
      for (std::uint32_t i = 0; i < m; ++i) {
        for (std::uint32_t j = 0; j < m; ++j) {
          const EdgeBlock& block = partition.block(i, j);
          if (block.edges.empty()) continue;
          const auto& src_vertices = partition.interval_vertices[i];
          const auto& dst_vertices = partition.interval_vertices[j];
          PIMA_CHECK(dst_vertices.size() <= width,
                     "interval too wide for one sub-array row — increase M");
          PIMA_CHECK(src_vertices.size() <= width,
                     "interval too wide for one sub-array row — increase M");
          const auto ship = [&](std::size_t flat,
                                const std::vector<BitVector>& rows) {
            net::Json req = make_op("degree_block");
            req.set("flat", static_cast<std::uint64_t>(flat));
            net::Json arr = net::Json::array();
            for (const auto& r : rows) arr.push_back(net::Json(r.to_string()));
            req.set("rows", std::move(arr));
            sup.rpc(plan.owner_of(flat), req);
          };
          // In-degrees: column sums of the block's adjacency rows.
          ship(runtime::block_subarray(total, i, j, m),
               block_adjacency_rows(block, src_vertices.size(), width));
          // Out-degrees: column sums of the transposed block.
          EdgeBlock transposed;
          transposed.source_interval = j;
          transposed.dest_interval = i;
          transposed.edges.reserve(block.edges.size());
          for (const auto& e : block.edges)
            transposed.edges.push_back({e.to, e.from, e.multiplicity});
          ship(runtime::block_subarray(total, j, i, m,
                                       static_cast<std::size_t>(m) * m),
               block_adjacency_rows(transposed, dst_vertices.size(), width));
        }
      }
      drain_all(sup);
    }
    std::vector<dna::Sequence> walks =
        options.euler_contigs
            ? assembly::contigs_from_euler(graph, options.traversal)
            : assembly::contigs_from_unitigs(graph);
    const std::size_t arrays = std::max<std::size_t>(1, options.hash_shards);
    if (plan.sharded()) {
      runtime::Exchange<dna::Sequence> handoff(options.devices);
      for (std::size_t w = 0; w < walks.size(); ++w) {
        const std::size_t owner = plan.owner_of(w % arrays);
        handoff.push(owner, 0, w, std::move(walks[w]));
      }
      result.contigs = handoff.gather(0);
    } else {
      result.contigs = std::move(walks);
    }
    const std::size_t data_rows = geometry.data_rows();
    constexpr std::size_t kProgramSlice = 8192;
    dram::Program lookups;
    lookups.reserve(kProgramSlice);
    std::size_t rr = 0;
    for (std::uint64_t e = 0; e < graph.edge_instances(); ++e) {
      dram::Instruction inst;
      inst.op = dram::Opcode::kRowRead;
      inst.subarray = rr++ % arrays;
      inst.src1 = (rr / arrays) % data_rows;
      lookups.push_back(std::move(inst));
      if (lookups.size() >= kProgramSlice) {
        if (options.cancel != nullptr) options.cancel->throw_if_requested();
        submit_program_sliced(sup, plan, std::move(lookups));
        lookups = {};
        lookups.reserve(kProgramSlice);
      }
    }
    submit_program_sliced(sup, plan, std::move(lookups));
    drain_all(sup);
    const StageFold fold = fold_stage(sup, plan, total);
    result.traverse = {fold.device, "traverse"};
    export_stage("traverse", result.traverse.device, fold.commands);
    clear_all_stats(sup);
    snap.contigs = result.contigs;
    snap.traverse = result.traverse.device;
    sup.mark_stage_done(3);
    write_checkpoint(3);
  }

  result.contig_stats = assembly::compute_stats(result.contigs);
  result.fault_stats = base_fault;
  if (options.capture_trace) {
    // Trace harvest, folded like DevicePool::captured_program: per-worker
    // per-sub-array replay programs, concatenated in logical flat order.
    std::vector<std::vector<std::pair<std::size_t, dram::Program>>> traces(
        sup.devices());
    for (std::size_t d = 0; d < sup.devices(); ++d) {
      const net::Json resp = sup.query(d, make_op("trace"));
      for (const auto& entry : resp.get("programs").items()) {
        std::istringstream in(entry.get_string("text"));
        traces[d].emplace_back(
            static_cast<std::size_t>(entry.get_uint64("flat")),
            dram::parse_program(in));
      }
    }
    std::vector<std::size_t> cursor(traces.size(), 0);
    for (std::size_t flat = 0; flat < total; ++flat) {
      const std::size_t d = plan.owner_of(flat);
      auto& c = cursor[d];
      while (c < traces[d].size() && traces[d][c].first < flat) ++c;
      if (c >= traces[d].size() || traces[d][c].first != flat) continue;
      auto& part = traces[d][c].second;
      result.trace.insert(result.trace.end(),
                          std::make_move_iterator(part.begin()),
                          std::make_move_iterator(part.end()));
    }
  }
  if (telemetry::metrics_enabled()) {
    auto& registry = telemetry::metrics();
    registry
        .gauge("pima_pipeline_distinct_kmers", "distinct k-mers counted")
        .set(static_cast<double>(result.distinct_kmers));
    registry.gauge("pima_pipeline_graph_nodes", "de Bruijn graph nodes")
        .set(static_cast<double>(result.graph_nodes));
    registry.gauge("pima_pipeline_graph_edges", "de Bruijn graph edges")
        .set(static_cast<double>(result.graph_edges));
    registry.gauge("pima_pipeline_contigs", "contigs produced")
        .set(static_cast<double>(result.contigs.size()));
  }
  sup.shutdown();
  return result;
}

}  // namespace pima::core::detail
