#include "core/graph_map.hpp"

#include "common/error.hpp"

namespace pima::core {

GraphPartition partition_graph(const assembly::DeBruijnGraph& g,
                               std::uint32_t m_intervals) {
  PIMA_CHECK(m_intervals >= 1, "need at least one interval");
  GraphPartition p;
  p.intervals = m_intervals;
  const auto n = g.node_count();
  p.vertex_interval.resize(n);
  p.vertex_local.resize(n);
  p.interval_vertices.resize(m_intervals);

  // Hash-based vertex → interval assignment (paper cites GraphH/GraphS):
  // the node's (k-1)-mer hash spreads hot vertices evenly.
  for (assembly::NodeId v = 0; v < n; ++v) {
    const auto interval =
        static_cast<std::uint32_t>(g.node_kmer(v).hash() % m_intervals);
    p.vertex_interval[v] = interval;
    p.vertex_local[v] =
        static_cast<std::uint32_t>(p.interval_vertices[interval].size());
    p.interval_vertices[interval].push_back(v);
  }

  p.blocks.resize(static_cast<std::size_t>(m_intervals) * m_intervals);
  for (std::uint32_t i = 0; i < m_intervals; ++i)
    for (std::uint32_t j = 0; j < m_intervals; ++j) {
      auto& b = p.blocks[i * m_intervals + j];
      b.source_interval = i;
      b.dest_interval = j;
    }

  for (const auto& e : g.edges()) {
    const auto si = p.vertex_interval[e.from];
    const auto di = p.vertex_interval[e.to];
    p.blocks[si * m_intervals + di].edges.push_back(
        {p.vertex_local[e.from], p.vertex_local[e.to], e.multiplicity});
  }
  return p;
}

std::size_t subarrays_for_vertices(std::size_t n_vertices,
                                   const dram::Geometry& geom) {
  const std::size_t f = std::min(geom.data_rows(), geom.columns);
  PIMA_CHECK(f > 0, "degenerate sub-array");
  return (n_vertices + f - 1) / f;
}

std::vector<BitVector> block_adjacency_rows(const EdgeBlock& block,
                                            std::size_t n_local_sources,
                                            std::size_t width) {
  std::vector<BitVector> rows;
  rows.reserve(n_local_sources);
  for (std::size_t r = 0; r < n_local_sources; ++r)
    rows.emplace_back(width);
  for (const auto& e : block.edges) {
    PIMA_CHECK(e.from < n_local_sources, "edge source outside block");
    PIMA_CHECK(e.to < width, "edge destination outside row width");
    // Multiplicity m > 1 contributes m instances; dense 1-bit rows can
    // carry one instance each, so extra instances append duplicate rows.
    rows[e.from].set(e.to, true);
    for (std::uint32_t extra = 1; extra < e.multiplicity; ++extra) {
      BitVector dup(width);
      dup.set(e.to, true);
      rows.push_back(std::move(dup));
    }
  }
  return rows;
}

std::vector<std::uint32_t> block_column_degrees(const EdgeBlock& block,
                                                std::size_t width) {
  std::vector<std::uint32_t> deg(width, 0);
  for (const auto& e : block.edges) {
    PIMA_CHECK(e.to < width, "edge destination outside row width");
    deg[e.to] += e.multiplicity;
  }
  return deg;
}

}  // namespace pima::core
