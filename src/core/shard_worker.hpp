// Device-worker core of the process-isolated runtime (DESIGN.md §15).
//
// `pima_devd` hosts exactly one device shard of an isolated pipeline run:
// a dram::Device, a runtime::Engine (with the watchdog, so a wedged kernel
// becomes a typed EngineStalledError instead of a silent hang) and the
// shard's slice of the PimHashTable. The parent supervisor drives it with
// newline-delimited JSON requests; this class is the transport-free verb
// dispatcher, so tests can exercise the protocol in-process and the
// `pima_devd` main() stays a thin I/O loop.
//
// Verbs (one request object per line, one response object per request):
//
//   init          geometry + technology + engine/table configuration
//   kmers         enqueue a k-mer batch on a channel (stage-1 insert path)
//   drain         barrier: wait for queued work, surface typed failures
//   extract       one hash shard's (k-mer, freq) entries in slot order
//   distinct      controller-side distinct-key count
//   program       parse + submit an AAP program slice (stages 2/3)
//   degree_block  run pim_column_sums on one sub-array (stage-3 kernel)
//   stats         per-sub-array CommandStats of every touched sub-array
//   clear_stats   stage-boundary statistics reset
//   trace         per-sub-array replay programs (oracle capture)
//   telemetry     cumulative span-buffer export for trace stitching
//   ping          liveness probe
//   shutdown      graceful exit handshake
//
// Determinism: the device state and statistics after any request sequence
// are a pure function of that sequence — the engine's per-sub-array
// ordering contract makes channel count irrelevant — which is what lets
// the supervisor replay a journal into a fresh worker after a crash and
// land on bit-identical state.
#pragma once

#include <cstddef>
#include <memory>

#include "circuit/tech.hpp"
#include "core/pim_hash_table.hpp"
#include "dram/device.hpp"
#include "dram/geometry.hpp"
#include "net/json.hpp"
#include "runtime/engine.hpp"

namespace pima::core {

/// Configuration carried by the init request. Doubles ride the wire as
/// plain JSON numbers — the writer's shortest round-trip-exact rendering
/// reproduces them bit-for-bit on the worker side.
struct WorkerInit {
  dram::Geometry geometry;
  circuit::Technology technology;
  std::size_t device = 0;   ///< this worker's shard id (diagnostics)
  std::size_t devices = 1;  ///< total shard count (diagnostics)
  std::size_t k = 0;
  std::size_t hash_shards = 1;
  std::size_t channels = 1;
  std::size_t queue_capacity = 64;
  std::size_t program_chunk = 512;
  bool capture_trace = false;
  bool trace_spans = false;  ///< enable the worker's own telemetry tracer
  double stall_timeout_ms = 0.0;
};

/// Serializes a WorkerInit as the `init` request object.
net::Json worker_init_to_json(const WorkerInit& init);
/// Parses an `init` request; throws InputFormatError on malformed fields.
WorkerInit worker_init_from_json(const net::Json& j);

class ShardWorkerCore {
 public:
  /// Constructs the device/engine/table from an `init` request.
  explicit ShardWorkerCore(const net::Json& init);
  ~ShardWorkerCore();

  /// Dispatches one non-init request and returns its ok-response. Typed
  /// pima exceptions escape to the caller (pima_devd converts them into
  /// `{"ok":false,"error":...}` lines; EngineStalledError additionally
  /// ends the process with the stall exit code — the engine is poisoned).
  net::Json handle(const net::Json& request);

  bool shutdown_requested() const { return shutdown_; }
  std::size_t device_index() const { return init_.device; }

 private:
  net::Json op_kmers(const net::Json& req);
  net::Json op_drain();
  net::Json op_extract(const net::Json& req);
  net::Json op_distinct();
  net::Json op_program(const net::Json& req);
  net::Json op_degree_block(const net::Json& req);
  net::Json op_stats();
  net::Json op_clear_stats();
  net::Json op_trace();
  net::Json op_telemetry();

  WorkerInit init_;
  dram::Device device_;
  std::unique_ptr<runtime::Engine> engine_;
  std::unique_ptr<PimHashTable> table_;
  bool shutdown_ = false;
};

/// Maps an exception to the wire error-type name the supervisor's
/// throw_worker_error() reconstructs (most-derived first, like
/// exit_code_for).
const char* worker_error_type(const std::exception& e);

/// Formats an exception as the `{"ok":false,...}` response object,
/// including EngineStalledError's reconstruction fields.
net::Json worker_error_response(const std::exception& e);

}  // namespace pima::core
