// In-memory graph reachability (GraphIDE-style bulk frontier expansion).
//
// The authors' companion work (GraphIDE, cited in the paper) runs graph
// kernels on the same in-DRAM substrate. Here the mechanism is the bulk OR
// that triple-row activation provides for free: MAJ3(a, b, 1) = a ∨ b, so
// TRA against a constant all-ones row ORs one adjacency row into the
// frontier accumulator in a single cycle.
//
// BFS over an adjacency matrix stored one row per vertex:
//   frontier ← {start};   visited ← frontier
//   repeat: next ← OR of adjacency rows of all frontier vertices (one TRA
//           each), frontier ← next ∧ ¬visited (two-row ops + DPU),
//           visited ← visited ∨ frontier — until the frontier empties.
// All bit-level work happens in the sub-array; the controller only decodes
// the frontier bits (a DPU read per level) to know which rows to activate.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph_map.hpp"
#include "dram/subarray.hpp"

namespace pima::dram {
class Device;
}

namespace pima::core {

/// Result of an in-memory reachability query.
struct ReachabilityResult {
  std::vector<bool> reachable;   ///< per vertex (includes the start)
  std::size_t levels = 0;        ///< BFS depth reached
};

/// Computes the set of vertices reachable from `start` over the adjacency
/// rows (row v = out-edges of vertex v, one bit per destination; vertex
/// count = rows.size() ≤ sub-array columns). Runs entirely inside `sa`.
ReachabilityResult pim_reachability(dram::Subarray& sa,
                                    const std::vector<BitVector>& adjacency,
                                    std::size_t start);

/// Weakly-connected component id per vertex, computed by repeated
/// in-memory reachability over the symmetrized adjacency.
std::vector<std::uint32_t> pim_components(
    dram::Subarray& sa, const std::vector<BitVector>& adjacency);

}  // namespace pima::core
