// Full-scale application cost model (reproduces paper Figs. 9, 10, 11 and
// the headline ~5× / ~7.5× claims).
//
// The functional simulator executes real commands on scaled genomes; this
// model scales the same per-query command mix to the paper's human-chr14
// workload (45,711,162 reads × 101 bp, k ∈ {16, 22, 26, 32}) and evaluates
// it on every application platform. All calibration constants live in
// CostModelParams with their provenance documented; EXPERIMENTS.md compares
// the resulting numbers against the paper's.
//
// Structural effects the model captures (not hard-coded):
//  * PIM per-probe cost is k-independent (one row compare covers up to
//    128 bp), while load/store platforms touch more words as k grows — so
//    the PIM speedup widens with k (paper: 5.2× at k=16 → 9.8× at k=32).
//  * Platforms differ only through their mechanism cycle counts
//    (xnor_cycles, add_cycles_per_bit, pim_aux_cycles) and power envelopes,
//    so "who wins by how much" emerges from the mechanisms.
//  * Parallelism degree Pd scales active sub-arrays: delay shrinks with an
//    Amdahl serial floor while dynamic power grows linearly (Fig. 10).
#pragma once

#include <cstdint>
#include <vector>

#include "platforms/platform.hpp"

namespace pima::core {

/// The assembly workload (defaults = the paper's chr14 configuration).
struct WorkloadParams {
  std::size_t genome_bases = 87'191'216;  ///< human chr14
  std::size_t read_count = 45'711'162;
  std::size_t read_length = 101;
  std::size_t k = 16;

  /// k-mer queries issued in stage 1: R · (L − k + 1).
  double queries() const {
    return static_cast<double>(read_count) *
           static_cast<double>(read_length - k + 1);
  }
  /// Distinct k-mers ≈ distinct genome k-mers (error-free reads at this
  /// coverage see essentially every position).
  double distinct_kmers() const {
    return static_cast<double>(genome_bases - k + 1);
  }
  double coverage() const {
    return static_cast<double>(read_count) *
           static_cast<double>(read_length) /
           static_cast<double>(genome_bases);
  }
};

/// Calibration constants (see each member's note; EXPERIMENTS.md, E5).
struct CostModelParams {
  // --- common workload profile ---
  /// Average probe chain length per hash query at the operating load
  /// factor (open addressing, α ≈ 0.7 ⇒ successful lookups probe ≈ 2).
  double probes_per_query = 2.0;
  /// Row cycles for the DPU reduce + controller decision after each compare.
  double dpu_cycles = 2.0;
  /// Row cycles for a counter read-modify-write (increment).
  double counter_rmw_cycles = 2.0;
  /// Row cycles for inserting a new key (RowClone + counter set).
  double insert_cycles = 3.0;
  /// PIM row cycles per graph MEM_insert beyond the probe chain.
  double graph_insert_cycles = 2.0;

  // --- parallelism ---
  /// Active sub-arrays per parallelism degree unit; Pd=2 (the paper's
  /// chosen operating point) gives 256 concurrently active sub-arrays.
  double units_per_pd = 128.0;
  /// Graph stages run on interval-block grids with cross-block
  /// dependencies; they sustain this fraction of the hashmap concurrency.
  double graph_parallel_fraction = 0.25;
  /// Amdahl serial fraction of PIM stage time (controller dispatch, DPU
  /// decisions) — sets where the Fig. 10 delay curve flattens.
  double serial_fraction = 0.15;

  // --- GPU workload profile (calibrated to the paper's GPU-Euler-class
  //     baseline; see EXPERIMENTS.md) ---
  /// ns per hash query, fixed part (hash + atomics contention).
  double gpu_query_base_ns = 7.0;
  /// ns per 32-bit key word touched per probe (random-access bound).
  double gpu_query_word_ns = 13.0;
  /// ns per graph operation (node/edge insert, degree add, walk step).
  double gpu_graph_op_ns = 50.0;
  /// Growth of GPU graph-op cost per key word (wider keys, more traffic).
  double gpu_graph_word_factor = 0.25;
};

/// One pipeline stage's estimated cost.
struct StageCost {
  double time_s = 0.0;
  double energy_j = 0.0;
};

/// Full application estimate for one platform / k / Pd point.
struct AppCost {
  StageCost hashmap;
  StageCost debruijn;
  StageCost traverse;
  double total_time_s = 0.0;
  double avg_power_w = 0.0;
  double mbr = 0.0;  ///< memory-bottleneck ratio (fraction of time stalled)
  double rur = 0.0;  ///< resource-utilization ratio
};

/// Estimates the three-stage assembly run. `pd` is the parallelism degree
/// (PIM platforms only; ignored for von-Neumann platforms).
AppCost estimate_application(const platforms::PlatformSpec& platform,
                             const WorkloadParams& workload, unsigned pd = 2,
                             const CostModelParams& params = {});

}  // namespace pima::core
