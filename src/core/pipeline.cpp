#include "core/pipeline.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "core/degree.hpp"
#include "core/graph_map.hpp"
#include "core/pipeline_detail.hpp"
#include "runtime/engine.hpp"
#include "runtime/procpool.hpp"
#include "runtime/shard.hpp"
#include "runtime/stats.hpp"
#include "telemetry/log.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/session.hpp"
#include "telemetry/telemetry.hpp"

namespace pima::core {

dram::DeviceStats PipelineResult::total() const {
  return hashmap.device + debruijn.device + traverse.device;
}

namespace detail {

GraphPartition partition_fitting(const assembly::DeBruijnGraph& g,
                                 const dram::Geometry& geom,
                                 std::uint32_t requested) {
  const std::size_t width = geom.columns;
  std::uint32_t m =
      requested > 0
          ? requested
          : static_cast<std::uint32_t>(
                std::max<std::size_t>(1, (g.node_count() + (width * 4) / 5 - 1) /
                                             ((width * 4) / 5)));
  for (;; ++m) {
    GraphPartition p = partition_graph(g, m);
    const bool fits = std::all_of(
        p.interval_vertices.begin(), p.interval_vertices.end(),
        [&](const auto& iv) { return iv.size() <= width; });
    if (fits) return p;
    PIMA_CHECK(requested == 0,
               "requested interval count leaves an oversized interval");
  }
}

runtime::CheckpointFingerprint make_fingerprint(const dram::Geometry& geom,
                                                const PipelineOptions& o) {
  runtime::CheckpointFingerprint fp;
  fp.k = o.k;
  fp.hash_shards = o.hash_shards;
  fp.devices = o.devices;
  fp.graph_intervals = o.graph_intervals;
  fp.use_multiplicity = o.use_multiplicity;
  fp.euler_contigs = o.euler_contigs;
  fp.traversal = static_cast<std::uint8_t>(o.traversal);
  fp.rows = geom.rows;
  fp.compute_rows = geom.compute_rows;
  fp.columns = geom.columns;
  fp.subarrays_per_mat = geom.subarrays_per_mat;
  fp.mats_per_bank = geom.mats_per_bank;
  fp.banks = geom.banks;
  fp.fault_variation = o.fault.variation;
  fp.fault_seed = o.fault.seed;
  fp.fault_retention = o.fault.retention_flip_per_op;
  fp.fault_weak_rows = o.fault.weak_row_fraction;
  fp.recovery_mode = static_cast<std::uint8_t>(o.recovery.mode);
  return fp;
}

}  // namespace detail

namespace {

using detail::make_fingerprint;
using detail::partition_fitting;

// Batched k-mer submission: the controller routes every k-mer of the read
// stream to the (device, channel) owning its hash shard and flushes
// per-slot batches through the bounded queues (backpressure throttles the
// controller when the channel executors fall behind). Per-shard insert
// order equals read-stream order for any device and channel count — this
// is the sharded pipeline's k-mer count shuffle, done at submission time.
void submit_kmer_stream(runtime::PoolRunner& runner, PimHashTable& table,
                        const std::vector<dna::Sequence>& reads,
                        std::size_t k, const runtime::CancelToken* cancel) {
  constexpr std::size_t kKmerBatch = 128;
  // One pending batch per (device, channel) slot, devices-major.
  std::vector<std::size_t> slot_base(runner.devices() + 1, 0);
  for (std::size_t d = 0; d < runner.devices(); ++d)
    slot_base[d + 1] = slot_base[d] + runner.engine(d).channels();
  std::vector<std::vector<assembly::Kmer>> pending(slot_base.back());
  auto flush = [&](std::size_t device, std::size_t channel) {
    auto& batch = pending[slot_base[device] + channel];
    if (batch.empty()) return;
    runner.engine(device).submit(
        channel, [&table, batch = std::move(batch)] {
          for (const auto& km : batch) table.insert_or_increment(km);
        });
    batch = {};
    batch.reserve(kKmerBatch);
  };

  // Live progress counters: bumped on the controller thread only, once per
  // read, so the totals are deterministic for any channel count (model
  // class) and cost nothing per k-mer.
  telemetry::Counter* reads_ctr = nullptr;
  telemetry::Counter* kmers_ctr = nullptr;
  if (telemetry::metrics_enabled()) {
    auto& registry = telemetry::metrics();
    reads_ctr = &registry.counter(telemetry::kReadsTotal,
                                  "reads streamed through k-mer analysis");
    kmers_ctr =
        &registry.counter(telemetry::kKmersTotal, "k-mer windows submitted");
  }

  for (const auto& read : reads) {
    if (cancel != nullptr) cancel->throw_if_requested();
    if (read.size() < k) {
      if (reads_ctr != nullptr) reads_ctr->increment();
      continue;
    }
    assembly::Kmer window = assembly::Kmer::from_sequence(read, 0, k);
    for (std::size_t i = 0;; ++i) {
      const std::size_t flat =
          table.shard_subarray_flat(table.shard_for(window));
      const std::size_t device = runner.owner_of(flat);
      const std::size_t channel = runner.engine(device).channel_of(flat);
      auto& batch = pending[slot_base[device] + channel];
      batch.push_back(window);
      if (batch.size() >= kKmerBatch) flush(device, channel);
      if (i + k >= read.size()) break;
      window = window.rolled(read.at(i + k));
    }
    if (reads_ctr != nullptr) {
      reads_ctr->increment();
      kmers_ctr->add(static_cast<double>(read.size() - k + 1));
    }
  }
  for (std::size_t d = 0; d < runner.devices(); ++d)
    for (std::size_t c = 0; c < runner.engine(d).channels(); ++c) flush(d, c);
  runner.drain();
}

}  // namespace

PipelineResult run_pipeline(dram::Device& device,
                            const std::vector<dna::Sequence>& reads,
                            const PipelineOptions& options) {
  PIMA_CHECK(options.devices >= 1, "need at least one device");
  if (options.isolate) {
    try {
      return detail::run_pipeline_isolated(device, reads, options);
    } catch (const runtime::ProcPoolDegradedError& e) {
      if (!options.isolate_opts.allow_degrade)
        throw WorkerCrashedError(e.device(),
                                 runtime::to_string(e.exit_class()),
                                 e.detail());
      // Typed, logged transition: same run, same outputs, one address
      // space. The device is untouched so far — every isolated-run write
      // happened inside the (now dead) workers.
      telemetry::log_event(
          telemetry::LogLevel::kWarn, "pool.fallback",
          std::string("process isolation degraded — ") + e.what() +
              "; rerunning on the in-process device pool",
          {telemetry::LogField::uint("device", e.device()),
           telemetry::LogField::str("class",
                                    runtime::to_string(e.exit_class()))});
    }
  }
  PipelineResult result;
  // Shard plan: the caller's device is shard 0; the pool owns the rest for
  // the duration of the run. With devices == 1 every pool call collapses
  // to the classic single-device path (same folds, same engine).
  runtime::DevicePool pool(device, options.devices);
  pool.clear_stats();

  PIMA_TEL_NAME_TRACK(runtime::Engine::kMainTrack, "main");
  PIMA_TEL_SET_THREAD_TRACK(runtime::Engine::kMainTrack);
  PIMA_TEL_SPAN("pipeline");
  if (telemetry::metrics_enabled())
    telemetry::metrics()
        .counter(telemetry::kReadsExpected, "reads in the input stream")
        .add(static_cast<double>(reads.size()));
  // Per-stage model metrics: stage roll-up plus the per-CommandKind
  // energy/latency split, derived from the same breakdown_from_stats the
  // report tables use — the two can never disagree.
  const auto export_stage = [&](const char* stage,
                                const dram::DeviceStats& st,
                                const dram::CommandStats& cmds) {
    if (!telemetry::metrics_enabled()) return;
    auto& registry = telemetry::metrics();
    const telemetry::Labels labels = {{"stage", stage}};
    registry
        .counter("pima_stage_commands_total", "DRAM commands per stage",
                 labels)
        .add(static_cast<double>(st.commands));
    registry
        .counter("pima_stage_time_ns_total",
                 "simulated critical-path time per stage (ns)", labels)
        .add(st.time_ns);
    registry
        .counter("pima_stage_energy_pj_total",
                 "simulated energy per stage (pJ)", labels)
        .add(st.energy_pj);
    registry
        .gauge("pima_stage_subarrays_used", "sub-arrays touched per stage",
               labels)
        .set(static_cast<double>(st.subarrays_used));
    telemetry::add_breakdown_metrics(
        registry, dram::breakdown_from_stats(cmds, device.geometry().columns,
                                             device.technology()));
  };
  std::unique_ptr<telemetry::ProgressReporter> progress;
  if (options.progress_interval_s > 0.0)
    progress = std::make_unique<telemetry::ProgressReporter>(
        telemetry::metrics(),
        telemetry::ProgressReporter::Options{options.progress_interval_s,
                                             nullptr});

  runtime::EngineOptions engine_options;
  engine_options.channels = options.threads;
  engine_options.queue_capacity = options.queue_capacity;
  engine_options.capture_trace = options.capture_trace;
  engine_options.stall_timeout_ms = options.stall_timeout_ms;
  runtime::PoolRunner runner(pool, engine_options);

  // Fault-aware execution: attach the Table-I-calibrated fault model to
  // every pool device and route the table's critical probes through the
  // recovery layer. When faults are off and recovery is kOff (the
  // default), nothing here runs and the pipeline is bit-identical to the
  // unfaulted build.
  pool.enable_faults(options.fault);
  std::unique_ptr<runtime::RecoveryManager> recovery;
  if (options.fault.enabled() ||
      options.recovery.mode != runtime::RecoveryMode::kOff)
    recovery =
        std::make_unique<runtime::RecoveryManager>(pool, options.recovery);

  // ---- Checkpoint/resume plumbing ----
  const runtime::CheckpointFingerprint fingerprint =
      make_fingerprint(device.geometry(), options);
  const std::string ckpt_path = options.checkpoint_dir.empty()
                                    ? std::string{}
                                    : options.checkpoint_dir + "/pipeline.ckpt";
  runtime::PipelineSnapshot snap;
  snap.fingerprint = fingerprint;
  std::uint32_t resume_stage = 0;
  if (options.resume) {
    PIMA_CHECK(!options.checkpoint_dir.empty(),
               "resume requires checkpoint_dir");
    if (options.fault.enabled())
      throw SimulationError(
          "resume with fault injection enabled is unsupported: per-sub-array "
          "fault RNG stream positions are not part of the snapshot, so a "
          "resumed run could not reproduce the interrupted one bit-for-bit");
    // A missing snapshot is not an error — the first run of a
    // checkpoint-then-resume loop simply starts fresh.
    if (std::ifstream probe(ckpt_path); probe.good()) {
      snap = runtime::load_checkpoint(ckpt_path);
      runtime::validate_compatible(snap, fingerprint);
      resume_stage = snap.stages_done;
    }
  }
  // Fault/recovery counters accumulated before the interruption; this
  // process's RecoveryManager adds its own deltas on top.
  const runtime::FaultStats base_fault = snap.fault_stats;
  const auto fault_now = [&] {
    return recovery ? base_fault + recovery->roll_up() : base_fault;
  };
  const auto write_checkpoint = [&](std::uint32_t stage) {
    if (ckpt_path.empty()) return;
    snap.stages_done = stage;
    snap.fault_stats = fault_now();
    runtime::save_checkpoint(ckpt_path, snap);
    if (options.on_checkpoint) options.on_checkpoint(stage, ckpt_path);
  };

  // ---- Stage 1: k-mer analysis (Hashmap(S, k)) ----
  // Ends with the table extraction (the controller reading the counted
  // shards back out), so the stage's snapshot state — the extracted
  // (k-mer, freq) list — fully covers the stage's device traffic and a
  // resumed run reproduces the uninterrupted stats exactly.
  std::vector<std::pair<assembly::Kmer, std::uint32_t>> entries;
  if (resume_stage >= 1) {
    entries = snap.kmer_entries;
    result.distinct_kmers = snap.distinct_kmers;
    result.hashmap = {snap.hashmap, "hashmap"};
  } else {
    PIMA_TEL_SPAN("stage:hashmap");
    if (options.cancel != nullptr) options.cancel->throw_if_requested();
    PimHashTable table(pool, options.hash_shards);
    table.bind_key_length(options.k);
    table.attach_recovery(recovery.get());
    try {
      submit_kmer_stream(runner, table, reads, options.k, options.cancel);
      if (pool.plan().sharded()) {
        // K-mer count shuffle: each owner streams its shards to the
        // controller through the stage-boundary exchange, merged by shard
        // index — the same (shard, slot) order extract() produces on one
        // device.
        runtime::Exchange<std::pair<assembly::Kmer, std::uint32_t>>
            shuffle(pool.size());
        for (std::size_t s = 0; s < table.shard_count(); ++s) {
          const std::size_t owner =
              pool.owner_of(table.shard_subarray_flat(s));
          for (auto& entry : table.extract_shard(s))
            shuffle.push(owner, 0, s, std::move(entry));
        }
        entries = shuffle.gather(0);
      } else {
        entries = table.extract();
      }
    } catch (const SimulationError&) {
      // In-flight insert tasks reference `table`; stop the channels before
      // the unwind destroys it (a failed shard otherwise races workers
      // against the destructor — use-after-free). Then drain to surface
      // the root task failure (e.g. "hash shard full") instead of the
      // fail-fast submit refusal that unwound us here.
      runner.quiesce();
      runner.drain();
      throw;
    } catch (...) {
      runner.quiesce();  // same race on the cancel path
      throw;
    }
    result.distinct_kmers = table.distinct_kmers();
    result.hashmap = {pool.roll_up(), "hashmap"};
    export_stage("hashmap", result.hashmap.device, pool.command_roll_up());
    pool.clear_stats();
    snap.distinct_kmers = result.distinct_kmers;
    snap.kmer_entries = entries;
    snap.hashmap = result.hashmap.device;
    write_checkpoint(1);
  }

  // ---- Stage 2a: de Bruijn construction (DeBruijn(Hashmap, k)) ----
  // Materialize the graph from the counted table. Node/edge MEM_inserts
  // land on the graph sub-arrays (one row write per insert, round-robin
  // over the shard range) — the construction is controller-sequenced but
  // storage-local, exactly the paper's MEM_insert traffic, here emitted as
  // a batched ROW_WRITE ISA program fanned out over the channels.
  if (resume_stage >= 2) {
    // from_edges() on the snapshot's edge list rebuilds the exact node ids
    // and adjacency the interrupted run had (the list is already in the
    // graph's sorted edge order).
    result.graph = assembly::DeBruijnGraph::from_edges(snap.graph_edges);
    result.debruijn = {snap.debruijn, "debruijn"};
  } else {
    PIMA_TEL_SPAN("stage:debruijn");
    if (options.cancel != nullptr) options.cancel->throw_if_requested();
    assembly::KmerCounter counter(entries.size());
    for (const auto& [km, freq] : entries) counter.insert_with_count(km, freq);
    result.graph = assembly::DeBruijnGraph::from_counter(
        counter, options.use_multiplicity);
    const auto& graph = result.graph;
    const std::size_t graph_base = options.hash_shards;
    const std::size_t graph_arrays = std::max<std::size_t>(
        1, std::min(options.hash_shards,
                    pool.total_subarrays() - graph_base));
    const std::size_t data_rows = pool.geometry().data_rows();
    const BitVector row_image(pool.geometry().columns);
    // Submitted in bounded slices: in-flight memory stays constant and the
    // queues' backpressure paces the controller.
    constexpr std::size_t kProgramSlice = 8192;
    dram::Program inserts;
    inserts.reserve(kProgramSlice);
    std::size_t rr = 0;
    auto mem_insert = [&] {
      dram::Instruction inst;
      inst.op = dram::Opcode::kRowWrite;
      inst.subarray = graph_base + (rr++ % graph_arrays);
      // Adjacency/edge-list rows are appended cyclically over data rows.
      inst.src1 = (rr / graph_arrays) % data_rows;
      inst.payload = row_image;
      inserts.push_back(std::move(inst));
      if (inserts.size() >= kProgramSlice) {
        if (options.cancel != nullptr) options.cancel->throw_if_requested();
        runner.submit_program(std::move(inserts));
        inserts = {};
        inserts.reserve(kProgramSlice);
      }
    };
    for (std::size_t e = 0; e < graph.edge_count(); ++e) {
      mem_insert();  // node 1 (prefix) insert
      mem_insert();  // node 2 (suffix) insert
      mem_insert();  // edge-list insert
    }
    runner.submit_program(std::move(inserts));
    runner.drain();
    result.debruijn = {pool.roll_up(), "debruijn"};
    export_stage("debruijn", result.debruijn.device, pool.command_roll_up());
    pool.clear_stats();
    snap.graph_edges.clear();
    snap.graph_edges.reserve(graph.edge_count());
    for (const auto& e : graph.edges())
      snap.graph_edges.emplace_back(e.kmer, e.multiplicity);
    snap.debruijn = result.debruijn.device;
    write_checkpoint(2);
  }
  const auto& graph = result.graph;
  result.graph_nodes = graph.node_count();
  result.graph_edges = graph.edge_count();

  // ---- Stage 2b: traversal (Traverse(G)) ----
  if (resume_stage >= 3) {
    result.contigs = snap.contigs;
    result.traverse = {snap.traverse, "traverse"};
  } else {
    PIMA_TEL_SPAN("stage:traverse");
    if (options.cancel != nullptr) options.cancel->throw_if_requested();
    const GraphPartition partition =
        partition_fitting(graph, pool.geometry(), options.graph_intervals);
    const DegreeResult degrees = pim_degrees(pool, graph, partition, &runner);
    // The controller uses the PIM-computed degrees to pick Euler start
    // vertices; the walk itself streams edge lookups (one row read each),
    // batched into per-channel ROW_READ programs.
    (void)degrees;
    std::vector<dna::Sequence> walks =
        options.euler_contigs
            ? assembly::contigs_from_euler(graph, options.traversal)
            : assembly::contigs_from_unitigs(graph);
    const std::size_t arrays = std::max<std::size_t>(1, options.hash_shards);
    if (pool.plan().sharded()) {
      // Contig hand-off: each walk is attributed to the device owning its
      // start shard and handed back through the stage-boundary exchange
      // keyed by walk index, so the final contig order is walk order for
      // any device count.
      runtime::Exchange<dna::Sequence> handoff(pool.size());
      for (std::size_t w = 0; w < walks.size(); ++w) {
        const std::size_t owner = pool.owner_of(w % arrays);
        handoff.push(owner, 0, w, std::move(walks[w]));
      }
      result.contigs = handoff.gather(0);
    } else {
      result.contigs = std::move(walks);
    }
    const std::size_t data_rows = pool.geometry().data_rows();
    constexpr std::size_t kProgramSlice = 8192;
    dram::Program lookups;
    lookups.reserve(kProgramSlice);
    std::size_t rr = 0;
    for (std::uint64_t e = 0; e < graph.edge_instances(); ++e) {
      dram::Instruction inst;
      inst.op = dram::Opcode::kRowRead;
      inst.subarray = rr++ % arrays;
      inst.src1 = (rr / arrays) % data_rows;
      lookups.push_back(std::move(inst));
      if (lookups.size() >= kProgramSlice) {
        if (options.cancel != nullptr) options.cancel->throw_if_requested();
        runner.submit_program(std::move(lookups));
        lookups = {};
        lookups.reserve(kProgramSlice);
      }
    }
    runner.submit_program(std::move(lookups));
    runner.drain();
    result.traverse = {pool.roll_up(), "traverse"};
    export_stage("traverse", result.traverse.device, pool.command_roll_up());
    pool.clear_stats();
    snap.contigs = result.contigs;
    snap.traverse = result.traverse.device;
    write_checkpoint(3);
  }

  result.contig_stats = assembly::compute_stats(result.contigs);
  result.fault_stats = fault_now();
  if (options.capture_trace) result.trace = pool.captured_program();
  if (telemetry::metrics_enabled()) {
    auto& registry = telemetry::metrics();
    runner.export_metrics(registry);
    if (recovery) recovery->export_metrics(registry);
    registry
        .gauge("pima_pipeline_distinct_kmers", "distinct k-mers counted")
        .set(static_cast<double>(result.distinct_kmers));
    registry.gauge("pima_pipeline_graph_nodes", "de Bruijn graph nodes")
        .set(static_cast<double>(result.graph_nodes));
    registry.gauge("pima_pipeline_graph_edges", "de Bruijn graph edges")
        .set(static_cast<double>(result.graph_edges));
    registry.gauge("pima_pipeline_contigs", "contigs produced")
        .set(static_cast<double>(result.contigs.size()));
  }
  return result;
}

}  // namespace pima::core
