#include "core/pipeline.hpp"

#include <algorithm>

#include "core/degree.hpp"
#include "core/graph_map.hpp"

namespace pima::core {

dram::DeviceStats PipelineResult::total() const {
  dram::DeviceStats t{};
  t.time_ns = hashmap.device.time_ns + debruijn.device.time_ns +
              traverse.device.time_ns;
  t.serial_ns = hashmap.device.serial_ns + debruijn.device.serial_ns +
                traverse.device.serial_ns;
  t.energy_pj = hashmap.device.energy_pj + debruijn.device.energy_pj +
                traverse.device.energy_pj;
  t.commands = hashmap.device.commands + debruijn.device.commands +
               traverse.device.commands;
  t.subarrays_used =
      std::max({hashmap.device.subarrays_used, debruijn.device.subarrays_used,
                traverse.device.subarrays_used});
  return t;
}

namespace {

// Picks the number of vertex intervals so every interval fits the column
// width of a sub-array row (hash distribution is near-uniform; retry with
// more intervals if an outlier interval overflows).
GraphPartition partition_fitting(const assembly::DeBruijnGraph& g,
                                 const dram::Geometry& geom,
                                 std::uint32_t requested) {
  const std::size_t width = geom.columns;
  std::uint32_t m =
      requested > 0
          ? requested
          : static_cast<std::uint32_t>(
                std::max<std::size_t>(1, (g.node_count() + (width * 4) / 5 - 1) /
                                             ((width * 4) / 5)));
  for (;; ++m) {
    GraphPartition p = partition_graph(g, m);
    const bool fits = std::all_of(
        p.interval_vertices.begin(), p.interval_vertices.end(),
        [&](const auto& iv) { return iv.size() <= width; });
    if (fits) return p;
    PIMA_CHECK(requested == 0,
               "requested interval count leaves an oversized interval");
  }
}

}  // namespace

PipelineResult run_pipeline(dram::Device& device,
                            const std::vector<dna::Sequence>& reads,
                            const PipelineOptions& options) {
  PipelineResult result;
  device.clear_stats();

  // ---- Stage 1: k-mer analysis (Hashmap(S, k)) ----
  PimHashTable table(device, options.hash_shards);
  for (const auto& read : reads) {
    if (read.size() < options.k) continue;
    assembly::Kmer window =
        assembly::Kmer::from_sequence(read, 0, options.k);
    for (std::size_t i = 0;; ++i) {
      table.insert_or_increment(window);
      if (i + options.k >= read.size()) break;
      window = window.rolled(read.at(i + options.k));
    }
  }
  result.distinct_kmers = table.distinct_kmers();
  result.hashmap = {device.roll_up(), "hashmap"};
  device.clear_stats();

  // ---- Stage 2a: de Bruijn construction (DeBruijn(Hashmap, k)) ----
  // Read the counted table out of the hash shards and materialize the
  // graph. Node/edge MEM_inserts land on the graph sub-arrays (one row
  // write per insert, round-robin over the shard range) — the construction
  // is controller-sequenced but storage-local, exactly the paper's
  // MEM_insert traffic.
  const auto entries = table.extract();
  assembly::KmerCounter counter(entries.size());
  for (const auto& [km, freq] : entries)
    for (std::uint32_t i = 0; i < freq; ++i) counter.insert_or_increment(km);
  const auto graph = assembly::DeBruijnGraph::from_counter(
      counter, options.use_multiplicity);
  result.graph_nodes = graph.node_count();
  result.graph_edges = graph.edge_count();
  {
    const std::size_t graph_base = options.hash_shards;
    const std::size_t graph_arrays = std::max<std::size_t>(
        1, std::min(options.hash_shards,
                    device.geometry().total_subarrays() - graph_base));
    const BitVector row_image(device.geometry().columns);
    std::size_t rr = 0;
    auto mem_insert = [&] {
      dram::Subarray& sa =
          device.subarray(graph_base + (rr++ % graph_arrays));
      // Adjacency/edge-list rows are appended cyclically over data rows.
      sa.write_row((rr / graph_arrays) % sa.geometry().data_rows(),
                   row_image);
    };
    for (std::size_t e = 0; e < graph.edge_count(); ++e) {
      mem_insert();  // node 1 (prefix) insert
      mem_insert();  // node 2 (suffix) insert
      mem_insert();  // edge-list insert
    }
  }
  result.debruijn = {device.roll_up(), "debruijn"};
  device.clear_stats();

  // ---- Stage 2b: traversal (Traverse(G)) ----
  const GraphPartition partition =
      partition_fitting(graph, device.geometry(), options.graph_intervals);
  const DegreeResult degrees = pim_degrees(device, graph, partition);
  // The controller uses the PIM-computed degrees to pick Euler start
  // vertices; the walk itself streams edge lookups (one row read each).
  (void)degrees;
  result.contigs = options.euler_contigs
                       ? assembly::contigs_from_euler(graph, options.traversal)
                       : assembly::contigs_from_unitigs(graph);
  {
    std::size_t rr = 0;
    const std::size_t arrays = std::max<std::size_t>(1, options.hash_shards);
    for (std::uint64_t e = 0; e < graph.edge_instances(); ++e) {
      dram::Subarray& sa = device.subarray(rr++ % arrays);
      sa.read_row((rr / arrays) % sa.geometry().data_rows());
    }
  }
  result.traverse = {device.roll_up(), "traverse"};
  device.clear_stats();

  result.contig_stats = assembly::compute_stats(result.contigs);
  return result;
}

}  // namespace pima::core
