// Interval-block graph partitioning and adjacency mapping (paper Fig. 8,
// stages "partitioning" and "allocation").
//
// The hash-based method divides the N vertices into M intervals and the
// edges into M² blocks — block (i, j) holds the edges from interval i to
// interval j. Each block is allocated to a chip and mapped onto its
// sub-arrays as a dense adjacency sub-matrix: one matrix row per sub-array
// row. An N-vertex sub-graph needs Ns = ceil(N / f) sub-arrays, with
// f = min(a, b) for an a×b sub-array.
#pragma once

#include <cstdint>
#include <vector>

#include "assembly/debruijn.hpp"
#include "common/bitvector.hpp"
#include "dram/geometry.hpp"

namespace pima::core {

/// One edge block: edges between two vertex intervals, in local ids.
struct EdgeBlock {
  std::uint32_t source_interval = 0;
  std::uint32_t dest_interval = 0;
  /// Edges as (local source index, local dest index, multiplicity).
  struct LocalEdge {
    std::uint32_t from, to, multiplicity;
  };
  std::vector<LocalEdge> edges;
};

/// The complete partition: interval assignment plus M² blocks.
struct GraphPartition {
  std::uint32_t intervals = 1;                 ///< M
  std::vector<std::uint32_t> vertex_interval;  ///< node → interval
  std::vector<std::uint32_t> vertex_local;     ///< node → index in interval
  std::vector<std::vector<assembly::NodeId>> interval_vertices;
  std::vector<EdgeBlock> blocks;               ///< M² blocks, row-major

  const EdgeBlock& block(std::uint32_t i, std::uint32_t j) const {
    return blocks.at(i * intervals + j);
  }
};

/// Hash-partitions the graph into M intervals and M² edge blocks.
GraphPartition partition_graph(const assembly::DeBruijnGraph& g,
                               std::uint32_t m_intervals);

/// Number of sub-arrays needed to process an n-vertex sub-graph on a×b
/// sub-arrays: Ns = ceil(n / min(a, b)).
std::size_t subarrays_for_vertices(std::size_t n_vertices,
                                   const dram::Geometry& geom);

/// Renders a block as dense adjacency rows (paper "mapping" stage): row r
/// holds the out-edges of local source vertex r; column c is set iff an
/// edge (r → c) exists. `width` is the sub-array column count; blocks wider
/// than a row are split by the caller. Multiplicities above 1 repeat rows
/// (each instance contributes 1 to the destination's in-degree).
std::vector<BitVector> block_adjacency_rows(const EdgeBlock& block,
                                            std::size_t n_local_sources,
                                            std::size_t width);

/// Software reference: per-destination in-degree of a block (column sums).
std::vector<std::uint32_t> block_column_degrees(const EdgeBlock& block,
                                                std::size_t width);

}  // namespace pima::core
