// Correlated data partitioning and mapping for the hash table
// (paper Fig. 6).
//
// One sub-array holds one hash-table shard, laid out so that keys, values
// and the staging area for incoming queries are local to the rows that
// compute on them:
//
//   k-mer region  — one k-mer per row (up to 128 bp at 2 bits/base);
//   value region  — 8-bit saturating frequency counters packed 32 per row;
//   temp region   — incoming query k-mers staged for row-parallel compare;
//   compute rows  — x1..x8 behind the modified row decoder.
//
// With the architecture's 1016 data rows (paper §II.A) the shard stores 977
// keys: 977 k-mer rows + 31 value rows (977 counters / 32 per row) + 8 temp
// rows. (Paper Fig. 6 sketches 980/32/8 over a 4-compute-row
// array; we keep §II.A's 8 compute rows and adjust the key count — the
// mapping logic is identical. See DESIGN.md.)
#pragma once

#include <cstddef>

#include "dram/geometry.hpp"

namespace pima::core {

/// Row-region plan of one hash shard within a sub-array.
struct ShardLayout {
  std::size_t kmer_rows;    ///< number of key slots (one row each)
  std::size_t value_rows;   ///< counter rows (32 × 8-bit counters per row)
  std::size_t temp_rows;    ///< query staging rows
  std::size_t counter_bits = 8;
  std::size_t columns = 256;  ///< row width of the geometry

  std::size_t counters_per_row() const { return columns / counter_bits; }

  /// Derives the layout for a geometry: temp gets 8 rows, values get
  /// ceil(slots / 32) rows, keys get the rest (solved so it all fits).
  static ShardLayout for_geometry(const dram::Geometry& g);

  /// Row address of key slot i (slots occupy the first kmer_rows rows).
  dram::RowAddr kmer_row(std::size_t slot) const;
  /// Row address holding slot i's counter.
  dram::RowAddr value_row(std::size_t slot) const;
  /// Bit offset of slot i's counter within its value row.
  std::size_t value_bit_offset(std::size_t slot) const;
  /// Row address of temp slot t.
  dram::RowAddr temp_row(std::size_t t) const;

  /// Total data rows consumed (must be ≤ geometry data rows).
  std::size_t rows_used() const {
    return kmer_rows + value_rows + temp_rows;
  }
};

}  // namespace pima::core
