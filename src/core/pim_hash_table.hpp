// In-DRAM k-mer counting hash table (paper Fig. 6 & 7).
//
// Keys are routed to shards (one shard = one sub-array) by hash; inside a
// shard the key probes its home row and linearly scans occupied rows using
// the single-cycle row-parallel comparator:
//
//   1. MEM_insert the query into a temp row,
//   2. PIM_XNOR: stage temp + candidate key row into x1/x2 and perform the
//      two-row-activation XNOR (one cycle), leaving per-column match bits,
//   3. the MAT-level DPU AND-reduces the first 2k bits — full-row match,
//   4. on match, PIM_Add increments the slot's 8-bit saturating counter;
//      on an empty slot, MEM_insert writes the key and sets the counter.
//
// The slot-occupancy bitmap lives in the controller (it is metadata about
// rows, not row data). Counter updates use the DPU read-modify-write path;
// bulk-parallel counter updates across a whole row of counters use the
// vertical PIM_Add (exercised by the graph stage).
//
// Every command lands on the owning sub-array's CommandStats, so hash-table
// construction cost rolls up through dram::Device with full parallelism
// accounting.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "assembly/kmer.hpp"
#include "core/layout.hpp"
#include "dram/device.hpp"
#include "runtime/recovery.hpp"

namespace pima::core {

/// Where a shard's value (counter) rows live relative to its key rows.
enum class MappingPolicy {
  /// Paper Fig. 6: counters co-located with their keys in the same
  /// sub-array — updates are row ops local to the shard.
  kCorrelated,
  /// Ablation baseline: all counters centralized in one dedicated
  /// sub-array (the layout a naive port would use). Every update crosses
  /// sub-arrays through the global row buffer and the value array becomes
  /// a serialization hotspot.
  kCentralValues,
};

/// Counting hash table materialized in simulated DRAM.
class PimHashTable {
 public:
  /// `shards` sub-arrays are taken from `device` starting at flat index
  /// `first_subarray`. Capacity = shards × layout.kmer_rows keys. With
  /// MappingPolicy::kCentralValues one extra sub-array (at
  /// `first_subarray + shards`) holds every counter.
  PimHashTable(dram::Device& device, std::size_t shards,
               std::size_t first_subarray = 0,
               MappingPolicy policy = MappingPolicy::kCorrelated);

  /// Pool-backed table (runtime/shard.hpp): shard s still lives at flat
  /// index first_subarray + s, but the sub-array is resolved through the
  /// pool's owner routing — shard_for(kmer) % devices is then exactly the
  /// paper-style owner = hash(canonical_kmer) % N k-mer distribution.
  /// Everything else (layout, probe path, extract order) is unchanged.
  PimHashTable(runtime::DevicePool& pool, std::size_t shards,
               std::size_t first_subarray = 0,
               MappingPolicy policy = MappingPolicy::kCorrelated);

  /// Inserts the k-mer or increments its counter. Returns new frequency.
  ///
  /// Thread compatibility: with the correlated mapping and the key length
  /// bound up front (bind_key_length), concurrent calls are safe as long as
  /// no two threads touch the same shard — all mutable state (sub-array
  /// rows, occupancy bitmap, entry count) is per shard. The runtime's
  /// channel executors guarantee that partitioning.
  std::uint32_t insert_or_increment(const assembly::Kmer& kmer);

  /// Frequency of a k-mer, or nullopt. (Same probe path, no mutation.)
  std::optional<std::uint32_t> lookup(const assembly::Kmer& kmer);

  /// Fixes the key length before any insert, so concurrent inserters never
  /// race on the lazy first-insert initialization.
  void bind_key_length(std::size_t k);

  /// Routes the probe comparator (the table's critical in-array op)
  /// through fault-aware execution: verify-retry/vote per the manager's
  /// policy, host-side recompute once a shard's sub-array degrades.
  /// nullptr restores the unchecked direct path. The manager must outlive
  /// the table's use and is shared per-sub-array, so the runtime's
  /// channel-ownership discipline keeps concurrent shards safe.
  void attach_recovery(runtime::RecoveryManager* recovery) {
    recovery_ = recovery;
  }

  std::size_t distinct_kmers() const;
  std::size_t capacity() const;
  std::size_t shard_count() const { return shards_.size(); }
  const ShardLayout& layout() const { return layout_; }

  /// Shard a k-mer routes to (the hash router the controller uses).
  std::size_t shard_for(const assembly::Kmer& kmer) const;
  /// Flat device index of a shard's sub-array — what the runtime uses to
  /// route inserts to the channel owning the shard.
  std::size_t shard_subarray_flat(std::size_t shard) const;

  /// Reads the table back out of DRAM into (k-mer, frequency) pairs, in
  /// deterministic (shard, slot) order. Costed as row reads.
  std::vector<std::pair<assembly::Kmer, std::uint32_t>> extract();

  /// One shard's entries in slot order — the per-owner stream the sharded
  /// pipeline feeds through its stage-boundary Exchange (k-mer count
  /// shuffle). extract() is exactly the shard-order concatenation.
  std::vector<std::pair<assembly::Kmer, std::uint32_t>> extract_shard(
      std::size_t shard);

  /// Decodes slot contents straight from row bits without cost (tests).
  std::optional<std::pair<assembly::Kmer, std::uint32_t>> peek_slot(
      std::size_t shard, std::size_t slot) const;

 private:
  struct Shard {
    std::size_t subarray_flat;           ///< index into the device
    std::vector<bool> occupied;          ///< controller-side slot bitmap
    std::size_t entries = 0;
  };

  void init(std::size_t shards, std::size_t first_subarray,
            MappingPolicy policy);
  const dram::Geometry& geometry() const;
  /// Sub-array behind a logical flat index (device- or pool-backed).
  dram::Subarray& backing_subarray(std::size_t flat);
  const dram::Subarray* backing_subarray_if(std::size_t flat) const;

  dram::Subarray& shard_subarray(const Shard& s);
  /// Sub-array holding this shard's counters (shard itself when
  /// correlated; the central value array otherwise).
  dram::Subarray& value_subarray(std::size_t shard_index);
  /// Row address of slot's counter in the value sub-array.
  dram::RowAddr value_row_for(std::size_t shard_index,
                              std::size_t slot) const;
  std::size_t home_slot(const assembly::Kmer& kmer) const;

  /// Row-parallel compare of the staged query against a key slot, through
  /// the recovery executor when one is attached.
  bool probe_matches(const Shard& shard, std::size_t slot, std::size_t k);

  std::uint32_t read_counter(std::size_t shard_index, std::size_t slot);
  void write_counter(std::size_t shard_index, std::size_t slot,
                     std::uint32_t v);

  dram::Device* device_ = nullptr;  ///< exactly one of device_/pool_ set
  runtime::DevicePool* pool_ = nullptr;
  ShardLayout layout_;
  MappingPolicy policy_;
  runtime::RecoveryManager* recovery_ = nullptr;
  std::vector<Shard> shards_;
  std::size_t central_value_flat_ = 0;  ///< used with kCentralValues
  std::size_t k_ = 0;  ///< key length (bound up front or at first insert)
};

}  // namespace pima::core
