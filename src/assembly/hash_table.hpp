// Software k-mer counting hash table (the paper's Hashmap(S, k) procedure).
//
// Open-addressing table with linear probing — deliberately the same probe
// discipline the PIM shard uses (core/pim_hash_table), so the software and
// in-memory implementations are step-for-step comparable and the
// instrumentation counters (comparisons, insertions, increments) measured
// here feed the full-scale cost model directly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "assembly/kmer.hpp"

namespace pima::assembly {

/// Instrumentation matching the paper's op classes: PIM_XNOR comparisons,
/// PIM_Add increments, MEM_insert writes.
struct HashOpCounts {
  std::uint64_t comparisons = 0;  ///< key probes (PIM_XNOR row compares)
  std::uint64_t increments = 0;   ///< frequency updates (PIM_Add)
  std::uint64_t inserts = 0;      ///< new-entry writes (MEM_insert)

  HashOpCounts& operator+=(const HashOpCounts& o) {
    comparisons += o.comparisons;
    increments += o.increments;
    inserts += o.inserts;
    return *this;
  }
};

/// Counting hash table over k-mers with saturating frequencies.
class KmerCounter {
 public:
  /// `expected_entries` sizes the table (load factor kept under 0.7);
  /// `counter_bits` bounds frequencies (the PIM shard stores 8-bit
  /// saturating counters — see core/layout).
  explicit KmerCounter(std::size_t expected_entries,
                       unsigned counter_bits = 32);

  /// Inserts the k-mer or increments its frequency (paper Fig. 5b loop
  /// body). Returns the new frequency.
  std::uint32_t insert_or_increment(const Kmer& kmer);

  /// Adds `count` occurrences at once (saturating) — the bulk path used
  /// when re-materializing a table from already-counted (k-mer, freq)
  /// pairs. Equivalent to `count` insert_or_increment calls but O(1) in
  /// the count. Returns the new frequency.
  std::uint32_t insert_with_count(const Kmer& kmer, std::uint32_t count);

  /// Frequency of a k-mer, or nullopt if absent. Counts probe comparisons.
  std::optional<std::uint32_t> lookup(const Kmer& kmer) const;

  std::size_t distinct_kmers() const { return entries_; }
  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t total_kmers() const { return total_; }

  const HashOpCounts& op_counts() const { return ops_; }
  void reset_op_counts() { ops_ = HashOpCounts{}; }

  /// Deterministic iteration over occupied entries (slot order).
  template <typename Fn>  // Fn(const Kmer&, uint32_t freq)
  void for_each(Fn&& fn) const {
    for (const auto& s : slots_)
      if (s.occupied) fn(s.kmer, s.freq);
  }

 private:
  struct Slot {
    Kmer kmer;
    std::uint32_t freq = 0;
    bool occupied = false;
  };

  std::size_t probe_start(const Kmer& k) const {
    return static_cast<std::size_t>(k.hash() % slots_.size());
  }
  void grow();

  std::vector<Slot> slots_;
  std::size_t entries_ = 0;
  std::uint64_t total_ = 0;
  std::uint32_t max_freq_;
  mutable HashOpCounts ops_;
};

/// Runs the full Hashmap(S,k) procedure over a read set: every read of
/// length L contributes L-k+1 k-mers. If `canonical`, k-mers are counted in
/// canonical (strand-insensitive) form.
KmerCounter build_hashmap(const std::vector<dna::Sequence>& reads,
                          std::size_t k, bool canonical = false,
                          unsigned counter_bits = 32);

}  // namespace pima::assembly
