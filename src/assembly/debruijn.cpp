#include "assembly/debruijn.hpp"

#include <algorithm>

namespace pima::assembly {

NodeId DeBruijnGraph::intern_node(const Kmer& km) {
  const auto [it, inserted] =
      node_index_.try_emplace(km, static_cast<NodeId>(node_kmers_.size()));
  if (inserted) {
    node_kmers_.push_back(km);
    adjacency_.emplace_back();
    in_degree_.push_back(0);
  }
  return it->second;
}

DeBruijnGraph DeBruijnGraph::from_counter(const KmerCounter& counter,
                                          bool use_multiplicity) {
  // Collect k-mers in deterministic order (slot order is deterministic for
  // a given input, but sort by value for full input-order independence).
  std::vector<std::pair<Kmer, std::uint32_t>> kmers;
  kmers.reserve(counter.distinct_kmers());
  counter.for_each([&](const Kmer& km, std::uint32_t freq) {
    kmers.emplace_back(km, use_multiplicity ? freq : 1);
  });
  return from_edges(std::move(kmers));
}

DeBruijnGraph DeBruijnGraph::from_edges(
    std::vector<std::pair<Kmer, std::uint32_t>> kmers) {
  DeBruijnGraph g;
  std::sort(kmers.begin(), kmers.end());
  for (const auto& [km, mult] : kmers) {
    PIMA_CHECK(mult > 0, "edge multiplicity must be positive");
    const NodeId from = g.intern_node(km.prefix());
    const NodeId to = g.intern_node(km.suffix());
    Edge e;
    e.from = from;
    e.to = to;
    e.kmer = km;
    e.multiplicity = mult;
    g.adjacency_[from].push_back(static_cast<std::uint32_t>(g.edges_.size()));
    g.in_degree_[to] += e.multiplicity;
    g.edge_instances_ += e.multiplicity;
    g.edges_.push_back(e);
  }
  return g;
}

std::uint32_t DeBruijnGraph::out_degree(NodeId n) const {
  std::uint32_t d = 0;
  for (const auto e : adjacency_.at(n)) d += edges_[e].multiplicity;
  return d;
}

std::uint32_t DeBruijnGraph::in_degree(NodeId n) const {
  return in_degree_.at(n);
}

std::optional<NodeId> DeBruijnGraph::find_node(const Kmer& km) const {
  const auto it = node_index_.find(km);
  if (it == node_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> DeBruijnGraph::unbalanced_nodes() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < node_kmers_.size(); ++n)
    if (out_degree(n) != in_degree(n)) out.push_back(n);
  return out;
}

std::vector<std::uint32_t> DeBruijnGraph::weak_components() const {
  const auto n = node_kmers_.size();
  std::vector<std::uint32_t> comp(n, ~std::uint32_t{0});
  // Undirected adjacency for the weak components.
  std::vector<std::vector<NodeId>> und(n);
  for (const auto& e : edges_) {
    und[e.from].push_back(e.to);
    und[e.to].push_back(e.from);
  }
  std::uint32_t next = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] != ~std::uint32_t{0}) continue;
    comp[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const NodeId v : und[u]) {
        if (comp[v] == ~std::uint32_t{0}) {
          comp[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  return comp;
}

}  // namespace pima::assembly
