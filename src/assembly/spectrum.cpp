#include "assembly/spectrum.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pima::assembly {

Spectrum compute_spectrum(const KmerCounter& counter, std::uint32_t max_freq) {
  PIMA_CHECK(max_freq >= 2, "spectrum needs at least two bins");
  Spectrum s;
  s.histogram.assign(max_freq + 1, 0);
  counter.for_each([&](const Kmer&, std::uint32_t freq) {
    ++s.histogram[std::min(freq, max_freq)];
    ++s.distinct_kmers;
    s.total_kmers += freq;
  });
  return s;
}

SpectrumAnalysis analyze_spectrum(const Spectrum& spectrum) {
  SpectrumAnalysis a;
  const auto& h = spectrum.histogram;
  if (spectrum.distinct_kmers == 0 || h.size() < 3) return a;

  // Valley: first f ≥ 2 where the histogram stops falling. If the
  // histogram falls monotonically to the tail there is no error mode.
  a.error_cutoff = 1;
  for (std::uint32_t f = 2; f + 1 < h.size(); ++f) {
    if (h[f] <= h[f + 1]) {
      a.error_cutoff = f;
      break;
    }
  }

  // Solid peak: the most populated frequency at/after the cutoff
  // (excluding the aggregated tail bin unless it dominates).
  std::uint32_t peak = a.error_cutoff;
  for (std::uint32_t f = a.error_cutoff; f < h.size(); ++f)
    if (h[f] > h[peak]) peak = f;
  a.coverage_peak = std::max<std::uint32_t>(peak, 1);

  double solid_mass = 0.0, error_distinct = 0.0;
  for (std::uint32_t f = 1; f < h.size(); ++f) {
    if (f >= a.error_cutoff)
      solid_mass += static_cast<double>(f) * static_cast<double>(h[f]);
    else
      error_distinct += static_cast<double>(h[f]);
  }
  a.genome_size_estimate =
      solid_mass / static_cast<double>(a.coverage_peak);
  a.error_kmer_fraction =
      error_distinct / static_cast<double>(spectrum.distinct_kmers);
  return a;
}

}  // namespace pima::assembly
