// Eulerian traversal (the paper's Traverse(G) procedure).
//
// The paper names the Fleury algorithm; we implement both Fleury (faithful,
// O(E²) — usable on the small graphs the functional simulator runs) and
// Hierholzer (O(E) — what the benches use at scale). Both spell identical
// multisets of edges; tests cross-check them. Traversal is per weakly-
// connected component: each component yields an Eulerian path when exactly
// 0 or 2 nodes are unbalanced, otherwise the component is decomposed into
// maximal walks greedily (real read sets rarely form perfect Euler graphs).
#pragma once

#include <vector>

#include "assembly/debruijn.hpp"

namespace pima::assembly {

/// One walk: a sequence of edge indices forming a trail in the graph.
using EdgeWalk = std::vector<std::uint32_t>;

enum class TraversalAlgorithm { kHierholzer, kFleury };

/// Decomposes the graph into edge-disjoint walks covering every edge
/// instance exactly once (an edge with multiplicity m appears in m walks
/// total). Components with an Eulerian path yield one walk each.
std::vector<EdgeWalk> euler_walks(const DeBruijnGraph& g,
                                  TraversalAlgorithm algo =
                                      TraversalAlgorithm::kHierholzer);

/// Spells the DNA sequence of a walk: node (k-1)-mer of the first edge's
/// source followed by the last base of every edge's k-mer.
dna::Sequence spell_walk(const DeBruijnGraph& g, const EdgeWalk& walk);

/// True if `walk` is a valid trail (consecutive edges share endpoints) that
/// uses no edge more often than its multiplicity.
bool is_valid_trail(const DeBruijnGraph& g, const EdgeWalk& walk);

}  // namespace pima::assembly
