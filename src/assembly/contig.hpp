// Contig generation and assembly statistics.
//
// Two contig extraction strategies:
//  * Euler walks (the paper's stage-2 path): each Euler walk spells one
//    contig — exact reconstruction when coverage is complete and the graph
//    has an Eulerian path.
//  * Unitigs: maximal non-branching paths of the de Bruijn graph — the
//    robust strategy practical assemblers (Velvet-style) use on imperfect
//    graphs; repeats terminate contigs at branch nodes (paper Fig. 5c shows
//    exactly this: contigs I–III end at the branching TTA node).
#pragma once

#include <vector>

#include "assembly/debruijn.hpp"
#include "assembly/euler.hpp"

namespace pima::assembly {

/// Contigs from Euler walks (multiplicity-aware traversal).
std::vector<dna::Sequence> contigs_from_euler(
    const DeBruijnGraph& g,
    TraversalAlgorithm algo = TraversalAlgorithm::kHierholzer);

/// Contigs as maximal non-branching paths (unitigs). Every edge is used
/// exactly once; paths stop at nodes with in-degree ≠ 1 or out-degree ≠ 1
/// (branch/junction nodes).
std::vector<dna::Sequence> contigs_from_unitigs(const DeBruijnGraph& g);

/// Assembly summary statistics.
struct ContigStats {
  std::size_t count = 0;
  std::size_t total_length = 0;
  std::size_t longest = 0;
  std::size_t n50 = 0;  ///< length L s.t. contigs ≥ L cover ≥ half the total
  double mean_length = 0.0;
};

ContigStats compute_stats(const std::vector<dna::Sequence>& contigs);

}  // namespace pima::assembly
