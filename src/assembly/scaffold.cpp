#include "assembly/scaffold.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>

#include "assembly/kmer.hpp"
#include "common/error.hpp"

namespace pima::assembly {
namespace {

// Where a read (or its reverse complement) sits on a contig.
struct Placement {
  std::size_t contig = 0;
  std::size_t offset = 0;   ///< read start in forward-contig coordinates
  bool reverse = false;     ///< read matched the contig's reverse complement
};

// K-mer index over contig positions. K-mers occurring in too many places
// (repeats) are dropped — they cannot place a read uniquely anyway.
class ContigIndex {
 public:
  ContigIndex(const std::vector<dna::Sequence>& contigs, std::size_t k)
      : contigs_(contigs), k_(k) {
    constexpr std::size_t kMaxHits = 4;
    for (std::size_t c = 0; c < contigs.size(); ++c) {
      const auto& seq = contigs[c];
      if (seq.size() < k) continue;
      for (std::size_t o = 0; o + k <= seq.size(); ++o) {
        auto& hits = index_[Kmer::from_sequence(seq, o, k)];
        if (hits.size() <= kMaxHits) hits.emplace_back(c, o);
      }
    }
  }

  /// Places `read` on some contig, trying both strands and several anchor
  /// k-mers, verifying the full read against the contig text.
  std::optional<Placement> place(const dna::Sequence& read) const {
    if (read.size() < k_) return std::nullopt;
    const dna::Sequence rc = read.reverse_complement();
    for (const bool reverse : {false, true}) {
      const dna::Sequence& q = reverse ? rc : read;
      for (std::size_t anchor = 0; anchor + k_ <= q.size(); anchor += k_) {
        const auto it = index_.find(Kmer::from_sequence(q, anchor, k_));
        if (it == index_.end()) continue;
        for (const auto& [c, o] : it->second) {
          if (o < anchor) continue;
          const std::size_t start = o - anchor;
          if (start + q.size() > contigs_[c].size()) continue;
          if (matches(contigs_[c], start, q)) {
            Placement p;
            p.contig = c;
            p.offset = start;
            p.reverse = reverse;
            return p;
          }
        }
      }
    }
    return std::nullopt;
  }

 private:
  static bool matches(const dna::Sequence& contig, std::size_t start,
                      const dna::Sequence& q) {
    for (std::size_t i = 0; i < q.size(); ++i)
      if (contig.at(start + i) != q.at(i)) return false;
    return true;
  }

  const std::vector<dna::Sequence>& contigs_;
  std::size_t k_;
  std::unordered_map<Kmer, std::vector<std::pair<std::size_t, std::size_t>>>
      index_;
};

// Presented form of a contig inside the genome: the contig id plus whether
// the genome shows its reverse complement.
struct Presented {
  std::size_t contig;
  bool reverse;
  bool operator<(const Presented& o) const {
    return std::tie(contig, reverse) < std::tie(o.contig, o.reverse);
  }
  bool operator==(const Presented& o) const = default;
};

// Genome-forward interpretation of a placement: which presented contig the
// read lies on, the read's offset within that presented form, and the
// presented length.
struct GenomePlacement {
  Presented form;
  std::size_t offset;  ///< read start within the presented form
};

GenomePlacement presented(const Placement& p, std::size_t contig_len,
                          std::size_t read_len) {
  GenomePlacement g;
  g.form = {p.contig, p.reverse};
  g.offset = p.reverse ? contig_len - p.offset - read_len : p.offset;
  return g;
}

struct LinkStats {
  std::size_t count = 0;
  double gap_sum = 0.0;
};

}  // namespace

std::size_t Scaffold::contig_length(
    const std::vector<dna::Sequence>& contigs) const {
  std::size_t len = 0;
  for (const auto& e : entries) len += contigs.at(e.contig).size();
  return len;
}

std::string Scaffold::spell(const std::vector<dna::Sequence>& contigs) const {
  std::string out;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    const auto& c = contigs.at(e.contig);
    out += (e.reverse ? c.reverse_complement() : c).to_string();
    if (i + 1 < entries.size())
      out.append(static_cast<std::size_t>(std::max<std::int64_t>(
                     e.gap_after, 1)),
                 'N');
  }
  return out;
}

ScaffoldResult scaffold_contigs(const std::vector<dna::Sequence>& contigs,
                                const std::vector<dna::ReadPair>& pairs,
                                const ScaffoldParams& params) {
  PIMA_CHECK(params.k >= 8 && params.k <= Kmer::kMaxK,
             "scaffold index k out of range");
  ScaffoldResult result;
  result.pairs_total = pairs.size();
  if (contigs.empty()) return result;

  const ContigIndex index(contigs, params.k);

  // Collect cross-contig link evidence. Both mates are interpreted on the
  // genome-forward axis: `first` directly, `second` via its reverse
  // complement (FR protocol).
  std::map<std::pair<Presented, Presented>, LinkStats> links;
  for (const auto& pair : pairs) {
    const auto p1 = index.place(pair.first);
    const auto p2 = index.place(pair.second.reverse_complement());
    if (!p1 || !p2) continue;
    ++result.pairs_placed;
    if (p1->contig == p2->contig) continue;

    const auto g1 =
        presented(*p1, contigs[p1->contig].size(), pair.first.size());
    const auto g2 =
        presented(*p2, contigs[p2->contig].size(), pair.second.size());
    // Fragment spans: first read starts the fragment, the forward image of
    // the second read ends it. With the fragment start pinned at 0:
    //   A's presented start = -g1.offset
    //   B's presented start = insert - L2 - g2.offset
    const double insert = params.insert_mean;
    const double a_end = -static_cast<double>(g1.offset) +
                         static_cast<double>(contigs[g1.form.contig].size());
    const double b_start = insert -
                           static_cast<double>(pair.second.size()) -
                           static_cast<double>(g2.offset);
    auto& stats = links[{g1.form, g2.form}];
    ++stats.count;
    stats.gap_sum += b_start - a_end;
  }

  // Greedy chaining over the strongest links.
  struct Candidate {
    Presented from, to;
    std::size_t count;
    double gap;
  };
  std::vector<Candidate> candidates;
  for (const auto& [key, stats] : links) {
    if (stats.count < params.min_links) continue;
    candidates.push_back({key.first, key.second, stats.count,
                          stats.gap_sum / static_cast<double>(stats.count)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.count > b.count;
            });

  // Per contig: fixed orientation once used, plus successor/predecessor.
  std::vector<std::optional<bool>> orientation(contigs.size());
  std::vector<std::optional<std::size_t>> successor(contigs.size());
  std::vector<std::optional<std::size_t>> predecessor(contigs.size());
  std::vector<double> gap_after(contigs.size(), 0.0);

  auto creates_cycle = [&](std::size_t from, std::size_t to) {
    std::size_t cur = to;
    while (true) {
      if (cur == from) return true;
      if (!successor[cur]) return false;
      cur = *successor[cur];
    }
  };

  for (const auto& c : candidates) {
    const auto [a, a_rev] = c.from;
    const auto [b, b_rev] = c.to;
    if (a == b) continue;
    if (orientation[a] && *orientation[a] != a_rev) continue;
    if (orientation[b] && *orientation[b] != b_rev) continue;
    if (successor[a] || predecessor[b]) continue;
    if (creates_cycle(a, b)) continue;
    orientation[a] = a_rev;
    orientation[b] = b_rev;
    successor[a] = b;
    predecessor[b] = a;
    gap_after[a] = c.gap;
    ++result.links_used;
  }

  // Emit chains from their heads; untouched contigs become singletons.
  std::vector<bool> emitted(contigs.size(), false);
  for (std::size_t c = 0; c < contigs.size(); ++c) {
    if (predecessor[c] || emitted[c]) continue;
    Scaffold scaffold;
    std::size_t cur = c;
    while (true) {
      emitted[cur] = true;
      ScaffoldEntry entry;
      entry.contig = cur;
      entry.reverse = orientation[cur].value_or(false);
      entry.gap_after =
          successor[cur] ? std::llround(gap_after[cur]) : 0;
      scaffold.entries.push_back(entry);
      if (!successor[cur]) break;
      cur = *successor[cur];
    }
    result.scaffolds.push_back(std::move(scaffold));
  }
  return result;
}

}  // namespace pima::assembly
