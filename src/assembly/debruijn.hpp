// de Bruijn graph construction (the paper's DeBruijn(Hashmap, k) procedure).
//
// Nodes are (k-1)-mers; every counted k-mer contributes a directed edge
// prefix → suffix carrying the k-mer's frequency as multiplicity. The graph
// keeps dense integer node ids so the PIM mapping layer can treat it as an
// adjacency structure (paper Fig. 8 maps vertex intervals to sub-arrays).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "assembly/hash_table.hpp"
#include "assembly/kmer.hpp"

namespace pima::assembly {

using NodeId = std::uint32_t;

/// One directed edge: prefix-node → suffix-node, labelled by the k-mer.
struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  Kmer kmer;                    ///< the k-mer that spells this edge
  std::uint32_t multiplicity = 1;
};

class DeBruijnGraph {
 public:
  /// Builds the graph from a counted k-mer table. If `use_multiplicity`,
  /// each k-mer contributes an edge with its frequency as multiplicity
  /// (Eulerian traversal then reconstructs repeats); otherwise each
  /// distinct k-mer is a single edge (unitig-style assembly).
  static DeBruijnGraph from_counter(const KmerCounter& counter,
                                    bool use_multiplicity = false);

  /// Builds the graph from an explicit (k-mer, multiplicity) list — the
  /// entry point the graph-simplification passes rebuild through. Edges
  /// are sorted by k-mer for deterministic node ids.
  static DeBruijnGraph from_edges(
      std::vector<std::pair<Kmer, std::uint32_t>> kmers);

  std::size_t node_count() const { return node_kmers_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  /// Total traversable edge instances (Σ multiplicity).
  std::uint64_t edge_instances() const { return edge_instances_; }

  const Kmer& node_kmer(NodeId n) const { return node_kmers_.at(n); }
  const Edge& edge(std::size_t e) const { return edges_.at(e); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Out-edge indices of a node.
  const std::vector<std::uint32_t>& out_edges(NodeId n) const {
    return adjacency_.at(n);
  }

  std::uint32_t out_degree(NodeId n) const;  ///< Σ multiplicity of out-edges
  std::uint32_t in_degree(NodeId n) const;

  /// Node id for a (k-1)-mer if present.
  std::optional<NodeId> find_node(const Kmer& km) const;

  /// Nodes with out-degree ≠ in-degree (Euler path endpoints) and
  /// isolated-component detection helpers.
  std::vector<NodeId> unbalanced_nodes() const;

  /// Weakly-connected component id per node (for per-component traversal).
  std::vector<std::uint32_t> weak_components() const;

 private:
  NodeId intern_node(const Kmer& km);

  std::vector<Kmer> node_kmers_;
  std::unordered_map<Kmer, NodeId> node_index_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::uint32_t>> adjacency_;  ///< per-node out-edge ids
  std::vector<std::uint32_t> in_degree_;               ///< Σ multiplicity
  std::uint64_t edge_instances_ = 0;
};

}  // namespace pima::assembly
