// Assembly verification against the reference genome.
//
// The simulator knows the ground truth (it generated the genome), so every
// assembly run can be checked: each contig must occur verbatim in the
// reference (or its reverse complement), and together the contigs should
// cover most of the reference. Tests and examples assert on these.
#pragma once

#include <vector>

#include "dna/sequence.hpp"

namespace pima::assembly {

struct VerificationReport {
  std::size_t contigs_checked = 0;
  std::size_t contigs_matching = 0;  ///< exact substring of ref or ref-RC
  double reference_coverage = 0.0;   ///< fraction of ref bases covered
  bool all_match() const { return contigs_checked == contigs_matching; }
};

/// Verifies contigs against the reference. Contigs shorter than
/// `min_length` are skipped (tiny fragments are noise, not evidence).
VerificationReport verify_contigs(const dna::Sequence& reference,
                                  const std::vector<dna::Sequence>& contigs,
                                  std::size_t min_length = 1);

/// True iff `needle` occurs in `haystack` (exact match).
bool contains_subsequence(const dna::Sequence& haystack,
                          const dna::Sequence& needle);

}  // namespace pima::assembly
