// Fixed-k k-mer value type.
//
// A k-mer (k ≤ 32) packs into one 64-bit word at 2 bits/base using the
// paper's T/G/A/C encoding, base 0 in the least-significant pair — the same
// bit image the mapping layer writes into DRAM rows. The paper evaluates
// k ∈ {16, 22, 26, 32}, all of which fit.
#pragma once

#include <cstdint>
#include <functional>

#include "dna/sequence.hpp"

namespace pima::assembly {

/// Packed k-mer plus its length. Value type; equality includes k.
class Kmer {
 public:
  static constexpr std::size_t kMaxK = 32;

  Kmer() = default;
  Kmer(std::uint64_t packed, std::size_t k) : bits_(packed), k_(k) {
    PIMA_CHECK(k >= 1 && k <= kMaxK, "k out of range");
    if (k < kMaxK) PIMA_CHECK(packed >> (2 * k) == 0, "stray high bits");
  }

  /// Extracts the k-mer starting at `pos` from a sequence.
  static Kmer from_sequence(const dna::Sequence& seq, std::size_t pos,
                            std::size_t k);

  std::uint64_t packed() const { return bits_; }
  std::size_t k() const { return k_; }

  dna::Base base(std::size_t i) const {
    PIMA_CHECK(i < k_, "base index out of k-mer");
    return dna::from_code(
        static_cast<std::uint8_t>((bits_ >> (2 * i)) & 0b11u));
  }

  /// Drops the first base and appends `b` (rolling window update).
  Kmer rolled(dna::Base b) const {
    const std::uint64_t mask =
        k_ == kMaxK ? ~std::uint64_t{0} : (std::uint64_t{1} << (2 * k_)) - 1;
    const std::uint64_t next =
        ((bits_ >> 2) | (static_cast<std::uint64_t>(dna::to_code(b))
                         << (2 * (k_ - 1)))) &
        mask;
    return Kmer(next, k_);
  }

  /// Prefix (k-1)-mer — the source node of this k-mer's de Bruijn edge.
  Kmer prefix() const {
    PIMA_CHECK(k_ >= 2, "prefix of a 1-mer");
    const std::uint64_t mask = (std::uint64_t{1} << (2 * (k_ - 1))) - 1;
    return Kmer(bits_ & mask, k_ - 1);
  }

  /// Suffix (k-1)-mer — the target node.
  Kmer suffix() const {
    PIMA_CHECK(k_ >= 2, "suffix of a 1-mer");
    return Kmer(bits_ >> 2, k_ - 1);
  }

  /// Reverse complement (same k).
  Kmer reverse_complement() const {
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const auto code = static_cast<std::uint64_t>(
          dna::to_code(dna::complement(base(i))));
      out |= code << (2 * (k_ - 1 - i));
    }
    return Kmer(out, k_);
  }

  /// Lexicographically smaller of this k-mer and its reverse complement
  /// (canonical form for strand-insensitive counting).
  Kmer canonical() const {
    const Kmer rc = reverse_complement();
    return rc.bits_ < bits_ ? rc : *this;
  }

  dna::Sequence to_sequence() const {
    dna::Sequence s;
    for (std::size_t i = 0; i < k_; ++i) s.push_back(base(i));
    return s;
  }

  std::string to_string() const { return to_sequence().to_string(); }

  bool operator==(const Kmer&) const = default;
  /// Ordering: by k then packed value (deterministic iteration).
  auto operator<=>(const Kmer&) const = default;

  /// Strong 64-bit mix of the packed value (splitmix64 finalizer) — the
  /// hash both the software table and the PIM shard router use.
  std::uint64_t hash() const {
    std::uint64_t z = bits_ + 0x9e3779b97f4a7c15ull + k_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t bits_ = 0;
  std::size_t k_ = 1;
};

inline Kmer Kmer::from_sequence(const dna::Sequence& seq, std::size_t pos,
                                std::size_t k) {
  PIMA_CHECK(k >= 1 && k <= kMaxK, "k out of range");
  PIMA_CHECK(pos + k <= seq.size(), "k-mer window exceeds sequence");
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < k; ++i)
    bits |= static_cast<std::uint64_t>(dna::to_code(seq.at(pos + i)))
            << (2 * i);
  return Kmer(bits, k);
}

}  // namespace pima::assembly

template <>
struct std::hash<pima::assembly::Kmer> {
  std::size_t operator()(const pima::assembly::Kmer& k) const noexcept {
    return static_cast<std::size_t>(k.hash());
  }
};
