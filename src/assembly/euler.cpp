#include "assembly/euler.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"

namespace pima::assembly {
namespace {

// Mutable traversal state shared by both algorithms: per-edge remaining
// multiplicity and per-node cursor into the adjacency list.
struct TraversalState {
  explicit TraversalState(const DeBruijnGraph& g)
      : graph(g), remaining(g.edge_count()), cursor(g.node_count(), 0) {
    for (std::size_t e = 0; e < g.edge_count(); ++e)
      remaining[e] = g.edge(e).multiplicity;
  }

  const DeBruijnGraph& graph;
  std::vector<std::uint32_t> remaining;
  std::vector<std::size_t> cursor;

  std::uint32_t remaining_out(NodeId v) const {
    std::uint32_t n = 0;
    for (const auto e : graph.out_edges(v)) n += remaining[e];
    return n;
  }

  // Next unused out-edge of v (advancing the cursor past exhausted ones),
  // or nullopt.
  std::optional<std::uint32_t> next_edge(NodeId v) {
    auto& c = cursor[v];
    const auto& adj = graph.out_edges(v);
    while (c < adj.size() && remaining[adj[c]] == 0) ++c;
    if (c == adj.size()) return std::nullopt;
    return adj[c];
  }
};

// Hierholzer trail from `start`, consuming edges from `st`.
EdgeWalk hierholzer_from(TraversalState& st, NodeId start) {
  EdgeWalk path;
  // Stack of (node, edge taken to reach it).
  std::vector<std::pair<NodeId, std::optional<std::uint32_t>>> stack;
  stack.emplace_back(start, std::nullopt);
  while (!stack.empty()) {
    const NodeId v = stack.back().first;
    if (const auto e = st.next_edge(v)) {
      --st.remaining[*e];
      stack.emplace_back(st.graph.edge(*e).to, *e);
    } else {
      const auto via = stack.back().second;
      stack.pop_back();
      if (via) path.push_back(*via);
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

// Counts edge instances reachable from v via edges with remaining
// multiplicity (used by the Fleury bridge test).
std::uint64_t reachable_instances(const TraversalState& st, NodeId v) {
  std::vector<bool> seen(st.graph.node_count(), false);
  std::vector<NodeId> stack{v};
  seen[v] = true;
  std::uint64_t count = 0;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const auto e : st.graph.out_edges(u)) {
      if (st.remaining[e] == 0) continue;
      count += st.remaining[e];
      const NodeId w = st.graph.edge(e).to;
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return count;
}

// Fleury trail from `start`: prefer non-bridge edges so the walk never
// strands unreached edges.
EdgeWalk fleury_from(TraversalState& st, NodeId start) {
  EdgeWalk path;
  NodeId v = start;
  for (;;) {
    // Candidate unused out-edges of v.
    std::vector<std::uint32_t> candidates;
    for (const auto e : st.graph.out_edges(v))
      if (st.remaining[e] > 0) candidates.push_back(e);
    if (candidates.empty()) break;

    std::uint32_t chosen = candidates.front();
    if (candidates.size() > 1 || st.remaining[chosen] > 1) {
      const std::uint64_t before = reachable_instances(st, v);
      bool picked = false;
      for (const auto e : candidates) {
        // An edge with multiplicity > 1 can never disconnect the walk.
        if (st.remaining[e] > 1) {
          chosen = e;
          picked = true;
          break;
        }
        // Tentatively remove e; if the remaining edges stay reachable from
        // its endpoint, e is not a bridge.
        --st.remaining[e];
        const std::uint64_t after =
            reachable_instances(st, st.graph.edge(e).to);
        ++st.remaining[e];
        if (after + 1 == before) {
          chosen = e;
          picked = true;
          break;
        }
      }
      if (!picked) chosen = candidates.front();  // all bridges: take first
    }
    --st.remaining[chosen];
    path.push_back(chosen);
    v = st.graph.edge(chosen).to;
  }
  return path;
}

}  // namespace

std::vector<EdgeWalk> euler_walks(const DeBruijnGraph& g,
                                  TraversalAlgorithm algo) {
  TraversalState st(g);
  std::vector<EdgeWalk> walks;

  // Remaining in-degree per node tracks unbalance as edges are consumed.
  auto pick_start = [&]() -> std::optional<NodeId> {
    // Prefer a node whose remaining out-degree exceeds remaining in-degree
    // (mandatory Euler-path start), else any node with unused out-edges.
    std::vector<std::uint32_t> rem_in(g.node_count(), 0);
    for (std::size_t e = 0; e < g.edge_count(); ++e)
      rem_in[g.edge(e).to] += st.remaining[e];
    std::optional<NodeId> fallback;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto out = st.remaining_out(v);
      if (out == 0) continue;
      if (out > rem_in[v]) return v;
      if (!fallback) fallback = v;
    }
    return fallback;
  };

  while (const auto start = pick_start()) {
    EdgeWalk walk = algo == TraversalAlgorithm::kHierholzer
                        ? hierholzer_from(st, *start)
                        : fleury_from(st, *start);
    PIMA_CHECK(!walk.empty(), "traversal made no progress");
    // Hierholzer splices detours assuming they are closed cycles, which
    // holds exactly when the component admits an Eulerian path. On general
    // read graphs (more than two unbalanced vertices) a splice can jump
    // between disconnected edges — split the output at every such seam so
    // each emitted walk is a genuine trail.
    std::size_t seg_begin = 0;
    for (std::size_t i = 1; i <= walk.size(); ++i) {
      const bool seam = i == walk.size() ||
                        g.edge(walk[i - 1]).to != g.edge(walk[i]).from;
      if (seam) {
        walks.emplace_back(walk.begin() + static_cast<std::ptrdiff_t>(seg_begin),
                           walk.begin() + static_cast<std::ptrdiff_t>(i));
        seg_begin = i;
      }
    }
  }
  return walks;
}

dna::Sequence spell_walk(const DeBruijnGraph& g, const EdgeWalk& walk) {
  PIMA_CHECK(!walk.empty(), "cannot spell an empty walk");
  const Edge& first = g.edge(walk.front());
  dna::Sequence seq = g.node_kmer(first.from).to_sequence();
  for (const auto e : walk) {
    const Kmer& km = g.edge(e).kmer;
    seq.push_back(km.base(km.k() - 1));
  }
  return seq;
}

bool is_valid_trail(const DeBruijnGraph& g, const EdgeWalk& walk) {
  if (walk.empty()) return true;
  std::vector<std::uint32_t> used(g.edge_count(), 0);
  for (std::size_t i = 0; i < walk.size(); ++i) {
    if (walk[i] >= g.edge_count()) return false;
    if (++used[walk[i]] > g.edge(walk[i]).multiplicity) return false;
    if (i > 0 && g.edge(walk[i - 1]).to != g.edge(walk[i]).from) return false;
  }
  return true;
}

}  // namespace pima::assembly
