// End-to-end software reference assembler (the paper's three-stage pipeline
// run on a conventional processor).
//
// Stage 1: k-mer analysis — Hashmap(S, k) over all reads.
// Stage 2: contig generation — DeBruijn(Hashmap, k) + Traverse(G).
// Stage 3 (scaffolding) is future work in the paper and here.
//
// Besides the assembled contigs, the assembler reports the per-stage
// operation counts (comparisons, additions, memory inserts, graph ops) that
// parameterize the platform cost models — this is the role the paper's
// Matlab behavioural simulator plays.
#pragma once

#include <cstdint>
#include <vector>

#include "assembly/contig.hpp"
#include "assembly/debruijn.hpp"
#include "assembly/hash_table.hpp"
#include "assembly/simplify.hpp"

namespace pima::assembly {

struct AssemblyOptions {
  std::size_t k = 16;
  bool canonical_kmers = false;
  bool use_multiplicity = false;    ///< Euler over edge multiplicities
  /// Drop k-mers below this frequency (error filtering; 1 keeps all).
  std::uint32_t min_kmer_freq = 1;
  TraversalAlgorithm traversal = TraversalAlgorithm::kHierholzer;
  /// true: contigs from Euler walks (paper's traverse); false: unitigs.
  bool euler_contigs = true;
  /// Clean sequencing-error artifacts (tips/bubbles/low-coverage edges)
  /// before traversal. Needed for reads with error_rate > 0.
  bool simplify = false;
  SimplifyParams simplify_params;
};

/// Per-stage operation counts (the workload profile the cost model scales).
struct StageOpCounts {
  // Stage 1 — hashmap.
  HashOpCounts hash;
  std::uint64_t kmers_processed = 0;
  // Stage 2a — graph construction.
  std::uint64_t node_inserts = 0;
  std::uint64_t edge_inserts = 0;
  // Stage 2b — traversal.
  std::uint64_t degree_additions = 0;  ///< PIM_Add-class ops in Traverse(G)
  std::uint64_t edges_walked = 0;
};

struct AssemblyResult {
  std::vector<dna::Sequence> contigs;
  ContigStats stats;
  StageOpCounts ops;
  std::size_t distinct_kmers = 0;
  std::size_t graph_nodes = 0;
  std::size_t graph_edges = 0;
  SimplifyStats simplify_stats;  ///< zeros when options.simplify is false
};

/// Runs the full pipeline on a read set.
AssemblyResult assemble(const std::vector<dna::Sequence>& reads,
                        const AssemblyOptions& options);

/// Applies the frequency filter to a counter, returning a filtered copy.
KmerCounter filter_by_frequency(const KmerCounter& counter,
                                std::uint32_t min_freq);

}  // namespace pima::assembly
