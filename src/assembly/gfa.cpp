#include "assembly/gfa.hpp"

#include <map>
#include <ostream>
#include <sstream>

#include "assembly/euler.hpp"
#include "common/error.hpp"

namespace pima::assembly {
namespace {

struct UnitigPath {
  EdgeWalk edges;
  NodeId first_node = 0;
  NodeId last_node = 0;
};

// Unitig decomposition keeping edge walks and endpoints (the sequence-only
// variant lives in contig.cpp; GFA needs the graph provenance too).
std::vector<UnitigPath> unitig_paths(const DeBruijnGraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::uint32_t> in_distinct(n, 0), out_distinct(n, 0);
  for (const auto& e : g.edges()) {
    ++out_distinct[e.from];
    ++in_distinct[e.to];
  }
  auto is_through = [&](NodeId v) {
    return in_distinct[v] == 1 && out_distinct[v] == 1;
  };

  std::vector<bool> used(g.edge_count(), false);
  std::vector<UnitigPath> paths;
  auto extend = [&](std::uint32_t first_edge) {
    UnitigPath p;
    p.edges.push_back(first_edge);
    p.first_node = g.edge(first_edge).from;
    used[first_edge] = true;
    NodeId v = g.edge(first_edge).to;
    while (is_through(v)) {
      std::uint32_t next = ~std::uint32_t{0};
      for (const auto e : g.out_edges(v))
        if (!used[e]) {
          next = e;
          break;
        }
      if (next == ~std::uint32_t{0}) break;
      used[next] = true;
      p.edges.push_back(next);
      v = g.edge(next).to;
    }
    p.last_node = v;
    paths.push_back(std::move(p));
  };

  for (NodeId v = 0; v < n; ++v) {
    if (is_through(v)) continue;
    for (const auto e : g.out_edges(v))
      if (!used[e]) extend(e);
  }
  for (std::uint32_t e = 0; e < g.edge_count(); ++e)
    if (!used[e]) extend(e);
  return paths;
}

}  // namespace

GfaGraph build_gfa(const DeBruijnGraph& graph) {
  GfaGraph gfa;
  const auto paths = unitig_paths(graph);

  std::multimap<NodeId, std::size_t> starts;  // first node → segment index
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto& p = paths[i];
    GfaSegment seg;
    seg.name = "utg" + std::to_string(i + 1);
    seg.sequence = spell_walk(graph, p.edges);
    seg.edges = p.edges;
    double mult = 0.0;
    for (const auto e : p.edges) mult += graph.edge(e).multiplicity;
    seg.mean_coverage = mult / static_cast<double>(p.edges.size());
    starts.emplace(p.first_node, i);
    gfa.segments.push_back(std::move(seg));
  }

  for (std::size_t i = 0; i < paths.size(); ++i) {
    const NodeId tail = paths[i].last_node;
    const auto [lo, hi] = starts.equal_range(tail);
    for (auto it = lo; it != hi; ++it) {
      GfaLink link;
      link.from = i;
      link.to = it->second;
      // Adjacent unitigs share the junction node's (k-1)-mer.
      link.overlap = graph.node_kmer(tail).k();
      gfa.links.push_back(link);
    }
  }
  return gfa;
}

void write_gfa(std::ostream& out, const GfaGraph& gfa) {
  out << "H\tVN:Z:1.0\n";
  for (const auto& seg : gfa.segments) {
    out << "S\t" << seg.name << '\t' << seg.sequence.to_string()
        << "\tLN:i:" << seg.sequence.size() << "\tdc:f:" << seg.mean_coverage
        << '\n';
  }
  for (const auto& link : gfa.links) {
    PIMA_CHECK(link.from < gfa.segments.size() &&
                   link.to < gfa.segments.size(),
               "link references unknown segment");
    out << "L\t" << gfa.segments[link.from].name << "\t+\t"
        << gfa.segments[link.to].name << "\t+\t" << link.overlap << "M\n";
  }
}

std::string to_gfa(const DeBruijnGraph& graph) {
  std::ostringstream out;
  write_gfa(out, build_gfa(graph));
  return out.str();
}

}  // namespace pima::assembly
