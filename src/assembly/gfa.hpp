// GFA v1 export of the assembly graph.
//
// GFA (Graphical Fragment Assembly) is the interchange format assemblers
// emit and downstream tools (Bandage, scaffolders, variant callers)
// consume. We export the unitig graph: one S (segment) line per maximal
// non-branching path with its sequence and average coverage, and one L
// (link) line per junction edge with the (k-2)-base overlap two adjacent
// unitigs share through their junction node.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "assembly/debruijn.hpp"

namespace pima::assembly {

/// One exported segment (unitig) with provenance into the graph.
struct GfaSegment {
  std::string name;
  dna::Sequence sequence;
  double mean_coverage = 0.0;   ///< average edge multiplicity along the path
  std::vector<std::uint32_t> edges;  ///< graph edge ids spelled by the path
};

/// One exported link: `from` unitig's tail overlaps `to` unitig's head.
struct GfaLink {
  std::size_t from = 0;  ///< segment index
  std::size_t to = 0;
  std::size_t overlap = 0;  ///< bases shared (k-2 for de Bruijn junctions)
};

struct GfaGraph {
  std::vector<GfaSegment> segments;
  std::vector<GfaLink> links;
};

/// Decomposes `graph` into its unitig segments and junction links.
GfaGraph build_gfa(const DeBruijnGraph& graph);

/// Writes GFA v1 text: H header, S lines (with dc:f coverage tags),
/// L lines (all forward orientation — de Bruijn edges are directed).
void write_gfa(std::ostream& out, const GfaGraph& gfa);

/// Convenience: build + serialize to a string.
std::string to_gfa(const DeBruijnGraph& graph);

}  // namespace pima::assembly
