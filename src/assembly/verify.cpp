#include "assembly/verify.hpp"

#include <algorithm>
#include <string>

namespace pima::assembly {

bool contains_subsequence(const dna::Sequence& haystack,
                          const dna::Sequence& needle) {
  if (needle.size() > haystack.size()) return false;
  // String search over the ASCII renderings: simple and fast enough for the
  // genome sizes the functional simulator handles.
  const std::string h = haystack.to_string();
  const std::string n = needle.to_string();
  return h.find(n) != std::string::npos;
}

VerificationReport verify_contigs(const dna::Sequence& reference,
                                  const std::vector<dna::Sequence>& contigs,
                                  std::size_t min_length) {
  VerificationReport report{};
  const std::string ref = reference.to_string();
  const std::string ref_rc = reference.reverse_complement().to_string();
  std::vector<bool> covered(reference.size(), false);

  for (const auto& contig : contigs) {
    if (contig.size() < min_length) continue;
    ++report.contigs_checked;
    const std::string c = contig.to_string();
    auto pos = ref.find(c);
    if (pos != std::string::npos) {
      ++report.contigs_matching;
      for (std::size_t i = 0; i < c.size(); ++i) covered[pos + i] = true;
      // Mark every further occurrence too (repeats).
      while ((pos = ref.find(c, pos + 1)) != std::string::npos)
        for (std::size_t i = 0; i < c.size(); ++i) covered[pos + i] = true;
    } else if (ref_rc.find(c) != std::string::npos) {
      ++report.contigs_matching;
      const auto rc_pos = ref_rc.find(c);
      // Map the reverse-complement hit back onto forward coordinates.
      const std::size_t fwd_start = reference.size() - rc_pos - c.size();
      for (std::size_t i = 0; i < c.size(); ++i) covered[fwd_start + i] = true;
    }
  }

  const auto covered_count =
      static_cast<std::size_t>(std::count(covered.begin(), covered.end(), true));
  report.reference_coverage =
      reference.empty() ? 0.0
                        : static_cast<double>(covered_count) /
                              static_cast<double>(reference.size());
  return report;
}

}  // namespace pima::assembly
