#include "assembly/simplify.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"

namespace pima::assembly {
namespace {

// Working view: alive flags over the graph's edge list plus distinct
// in/out degree tables (multiplicity-blind — structure decides).
struct View {
  explicit View(const DeBruijnGraph& g) : graph(g), alive(g.edge_count(), true) {
    recount();
  }

  void recount() {
    in_distinct.assign(graph.node_count(), 0);
    out_distinct.assign(graph.node_count(), 0);
    in_edges.assign(graph.node_count(), {});
    for (std::size_t e = 0; e < graph.edge_count(); ++e) {
      if (!alive[e]) continue;
      ++out_distinct[graph.edge(e).from];
      ++in_distinct[graph.edge(e).to];
      in_edges[graph.edge(e).to].push_back(static_cast<std::uint32_t>(e));
    }
  }

  // The single live out-edge of v, if exactly one.
  std::optional<std::uint32_t> sole_out(NodeId v) const {
    std::optional<std::uint32_t> found;
    for (const auto e : graph.out_edges(v)) {
      if (!alive[e]) continue;
      if (found) return std::nullopt;
      found = e;
    }
    return found;
  }

  std::vector<std::uint32_t> live_out(NodeId v) const {
    std::vector<std::uint32_t> out;
    for (const auto e : graph.out_edges(v))
      if (alive[e]) out.push_back(e);
    return out;
  }

  const DeBruijnGraph& graph;
  std::vector<bool> alive;
  std::vector<std::uint32_t> in_distinct;
  std::vector<std::uint32_t> out_distinct;
  std::vector<std::vector<std::uint32_t>> in_edges;
};

// Minimum multiplicity along a path.
std::uint32_t path_min_mult(const View& v,
                            const std::vector<std::uint32_t>& path) {
  std::uint32_t m = ~std::uint32_t{0};
  for (const auto e : path)
    m = std::min(m, v.graph.edge(e).multiplicity);
  return m;
}

// Forward tip: a path from a source node (in-degree 0) through unary nodes
// that attaches to the main graph at a node with extra in-edges. Clipped
// only when its coverage evidence is strictly weaker than the competing
// in-path at the attachment node (Velvet's criterion — otherwise genuine
// contig heads that touch a repeat node would be destroyed). Returns the
// clipped edge count.
std::size_t clip_forward_tips(View& v, std::size_t max_len) {
  std::size_t clipped = 0;
  for (NodeId s = 0; s < v.graph.node_count(); ++s) {
    if (v.in_distinct[s] != 0 || v.out_distinct[s] != 1) continue;
    std::vector<std::uint32_t> path;
    NodeId cur = s;
    bool attaches = false;
    while (path.size() <= max_len) {
      const auto e = v.sole_out(cur);
      if (!e) break;
      path.push_back(*e);
      cur = v.graph.edge(*e).to;
      if (v.in_distinct[cur] > 1) {
        attaches = true;  // joined the main path: this was a tip
        break;
      }
      if (v.out_distinct[cur] != 1) break;  // dead end or branch
    }
    if (!attaches || path.size() > max_len) continue;
    // Competing evidence: the strongest other in-edge at the attachment.
    std::uint32_t competing = 0;
    for (const auto e : v.in_edges[cur])
      if (e != path.back())
        competing = std::max(competing, v.graph.edge(e).multiplicity);
    if (path_min_mult(v, path) < competing) {
      for (const auto e : path) v.alive[e] = false;
      clipped += path.size();
      v.recount();
    }
  }
  return clipped;
}

// Backward tip: junction → unary path → sink (out-degree 0).
std::size_t clip_backward_tips(View& v, std::size_t max_len) {
  std::size_t clipped = 0;
  for (NodeId j = 0; j < v.graph.node_count(); ++j) {
    if (v.out_distinct[j] < 2) continue;
    for (const auto first : v.live_out(j)) {
      std::vector<std::uint32_t> path{first};
      NodeId cur = v.graph.edge(first).to;
      bool is_tip = false;
      while (path.size() <= max_len) {
        if (v.in_distinct[cur] != 1) break;  // re-joins the graph: not a tip
        if (v.out_distinct[cur] == 0) {
          is_tip = true;
          break;
        }
        if (v.out_distinct[cur] != 1) break;
        const auto e = v.sole_out(cur);
        if (!e) break;
        path.push_back(*e);
        cur = v.graph.edge(*e).to;
      }
      if (!is_tip || path.size() > max_len) continue;
      // Competing evidence: the strongest other out-edge at the junction.
      std::uint32_t competing = 0;
      for (const auto other : v.live_out(j))
        if (other != first)
          competing = std::max(competing, v.graph.edge(other).multiplicity);
      if (path_min_mult(v, path) < competing) {
        for (const auto e : path) v.alive[e] = false;
        clipped += path.size();
        v.recount();
      }
    }
  }
  return clipped;
}

// Walks a unary path from `first` for at most max_len edges; returns the
// edges and the end node, stopping when the walk re-branches.
struct BranchWalk {
  std::vector<std::uint32_t> edges;
  NodeId end = 0;
  std::uint32_t min_multiplicity = ~std::uint32_t{0};
  bool unary = true;  ///< every interior node was 1-in/1-out
};

BranchWalk walk_branch(const View& v, std::uint32_t first,
                       std::size_t max_len) {
  BranchWalk w;
  w.edges.push_back(first);
  w.min_multiplicity = v.graph.edge(first).multiplicity;
  NodeId cur = v.graph.edge(first).to;
  while (w.edges.size() < max_len && v.in_distinct[cur] == 1 &&
         v.out_distinct[cur] == 1) {
    const auto e = v.sole_out(cur);
    if (!e) break;
    w.edges.push_back(*e);
    w.min_multiplicity =
        std::min(w.min_multiplicity, v.graph.edge(*e).multiplicity);
    cur = v.graph.edge(*e).to;
  }
  w.end = cur;
  return w;
}

// Bubble: two equal-length branches from one junction converging on one
// node. The branch with lower minimum multiplicity is removed.
std::size_t pop_bubbles(View& v, std::size_t max_len) {
  std::size_t popped = 0;
  for (NodeId j = 0; j < v.graph.node_count(); ++j) {
    if (v.out_distinct[j] < 2) continue;
    const auto outs = v.live_out(j);
    for (std::size_t a = 0; a < outs.size(); ++a) {
      for (std::size_t b = a + 1; b < outs.size(); ++b) {
        const auto wa = walk_branch(v, outs[a], max_len);
        const auto wb = walk_branch(v, outs[b], max_len);
        if (wa.end != wb.end || wa.edges.size() != wb.edges.size()) continue;
        const auto& weaker =
            wa.min_multiplicity <= wb.min_multiplicity ? wa : wb;
        for (const auto e : weaker.edges) v.alive[e] = false;
        ++popped;
        v.recount();
      }
    }
  }
  return popped;
}

DeBruijnGraph rebuild(const View& v) {
  std::vector<std::pair<Kmer, std::uint32_t>> kept;
  for (std::size_t e = 0; e < v.graph.edge_count(); ++e)
    if (v.alive[e])
      kept.emplace_back(v.graph.edge(e).kmer, v.graph.edge(e).multiplicity);
  return DeBruijnGraph::from_edges(std::move(kept));
}

}  // namespace

SimplifyResult simplify_graph(const DeBruijnGraph& graph,
                              const SimplifyParams& params) {
  SimplifyResult result;
  result.graph = graph;

  // Pass 0: coverage filter.
  if (params.min_edge_multiplicity > 1) {
    std::vector<std::pair<Kmer, std::uint32_t>> kept;
    for (const auto& e : result.graph.edges()) {
      if (e.multiplicity >= params.min_edge_multiplicity)
        kept.emplace_back(e.kmer, e.multiplicity);
      else
        ++result.stats.low_coverage_removed;
    }
    result.graph = DeBruijnGraph::from_edges(std::move(kept));
  }

  for (std::size_t round = 0; round < params.max_rounds; ++round) {
    View view(result.graph);
    std::size_t changed = 0;
    if (params.max_tip_length > 0) {
      const auto fwd = clip_forward_tips(view, params.max_tip_length);
      const auto bwd = clip_backward_tips(view, params.max_tip_length);
      result.stats.tips_removed += fwd + bwd;
      changed += fwd + bwd;
    }
    if (params.max_bubble_length > 0) {
      const auto popped = pop_bubbles(view, params.max_bubble_length);
      result.stats.bubbles_popped += popped;
      changed += popped;
    }
    ++result.stats.rounds;
    if (changed == 0) break;
    result.graph = rebuild(view);
  }
  return result;
}

}  // namespace pima::assembly
