#include "assembly/assembler.hpp"

namespace pima::assembly {

KmerCounter filter_by_frequency(const KmerCounter& counter,
                                std::uint32_t min_freq) {
  KmerCounter out(counter.distinct_kmers());
  counter.for_each([&](const Kmer& km, std::uint32_t freq) {
    if (freq < min_freq) return;
    for (std::uint32_t i = 0; i < freq; ++i) out.insert_or_increment(km);
  });
  out.reset_op_counts();  // filtering is not application workload
  return out;
}

AssemblyResult assemble(const std::vector<dna::Sequence>& reads,
                        const AssemblyOptions& options) {
  AssemblyResult result;

  // Stage 1: k-mer analysis.
  KmerCounter counter = build_hashmap(reads, options.k,
                                      options.canonical_kmers);
  result.ops.hash = counter.op_counts();
  result.ops.kmers_processed = counter.total_kmers();
  result.distinct_kmers = counter.distinct_kmers();

  if (options.min_kmer_freq > 1)
    counter = filter_by_frequency(counter, options.min_kmer_freq);

  // Stage 2a: graph construction. Each distinct k-mer inserts two nodes
  // (probe + possible insert) and one edge (paper DeBruijn procedure).
  DeBruijnGraph graph =
      DeBruijnGraph::from_counter(counter, options.use_multiplicity);
  if (options.simplify) {
    auto cleaned = simplify_graph(graph, options.simplify_params);
    graph = std::move(cleaned.graph);
    result.simplify_stats = cleaned.stats;
  }
  result.graph_nodes = graph.node_count();
  result.graph_edges = graph.edge_count();
  result.ops.node_inserts = 2 * graph.edge_count();
  result.ops.edge_inserts = graph.edge_count();

  // Stage 2b: traversal. The paper's Traverse(G) computes in/out degrees of
  // every vertex by summing adjacency entries (PIM_Add): every edge
  // instance feeds one out-degree and one in-degree accumulation.
  result.ops.degree_additions = 2 * graph.edge_instances();
  result.contigs = options.euler_contigs
                       ? contigs_from_euler(graph, options.traversal)
                       : contigs_from_unitigs(graph);
  result.ops.edges_walked = graph.edge_instances();
  result.stats = compute_stats(result.contigs);
  return result;
}

}  // namespace pima::assembly
