#include "assembly/hash_table.hpp"

#include <algorithm>

namespace pima::assembly {
namespace {

std::size_t table_size_for(std::size_t expected) {
  // Next power of two above expected/0.7 (power-of-two keeps the probe
  // arithmetic cheap and mirrors the PIM shard's row addressing).
  std::size_t n = 16;
  while (n * 7 < expected * 10) n <<= 1;
  return n;
}

}  // namespace

KmerCounter::KmerCounter(std::size_t expected_entries, unsigned counter_bits)
    : slots_(table_size_for(std::max<std::size_t>(expected_entries, 1))),
      max_freq_(counter_bits >= 32
                    ? ~std::uint32_t{0}
                    : (std::uint32_t{1} << counter_bits) - 1) {
  PIMA_CHECK(counter_bits >= 1 && counter_bits <= 32,
             "counter width must be 1..32 bits");
}

std::uint32_t KmerCounter::insert_or_increment(const Kmer& kmer) {
  if ((entries_ + 1) * 10 > slots_.size() * 7) grow();
  std::size_t i = probe_start(kmer);
  for (;;) {
    Slot& s = slots_[i];
    if (!s.occupied) {
      s.kmer = kmer;
      s.freq = 1;
      s.occupied = true;
      ++entries_;
      ++total_;
      ++ops_.inserts;
      return 1;
    }
    ++ops_.comparisons;
    if (s.kmer == kmer) {
      if (s.freq < max_freq_) ++s.freq;  // saturating
      ++total_;
      ++ops_.increments;
      return s.freq;
    }
    i = (i + 1) & (slots_.size() - 1);
  }
}

std::uint32_t KmerCounter::insert_with_count(const Kmer& kmer,
                                             std::uint32_t count) {
  if (count == 0) return lookup(kmer).value_or(0);
  if ((entries_ + 1) * 10 > slots_.size() * 7) grow();
  std::size_t i = probe_start(kmer);
  for (;;) {
    Slot& s = slots_[i];
    if (!s.occupied) {
      s.kmer = kmer;
      s.freq = std::min(count, max_freq_);
      s.occupied = true;
      ++entries_;
      total_ += count;
      ++ops_.inserts;
      ops_.increments += count - 1;
      return s.freq;
    }
    ++ops_.comparisons;
    if (s.kmer == kmer) {
      const std::uint64_t sum = std::uint64_t{s.freq} + count;
      s.freq = sum > max_freq_ ? max_freq_
                               : static_cast<std::uint32_t>(sum);
      total_ += count;
      ops_.increments += count;
      return s.freq;
    }
    i = (i + 1) & (slots_.size() - 1);
  }
}

std::optional<std::uint32_t> KmerCounter::lookup(const Kmer& kmer) const {
  std::size_t i = probe_start(kmer);
  for (;;) {
    const Slot& s = slots_[i];
    if (!s.occupied) return std::nullopt;
    ++ops_.comparisons;
    if (s.kmer == kmer) return s.freq;
    i = (i + 1) & (slots_.size() - 1);
  }
}

void KmerCounter::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  entries_ = 0;
  const auto saved_total = total_;
  const auto saved_ops = ops_;  // rehash is bookkeeping, not workload ops
  for (const auto& s : old) {
    if (!s.occupied) continue;
    std::size_t i = probe_start(s.kmer);
    while (slots_[i].occupied) i = (i + 1) & (slots_.size() - 1);
    slots_[i] = s;
    ++entries_;
  }
  total_ = saved_total;
  ops_ = saved_ops;
}

KmerCounter build_hashmap(const std::vector<dna::Sequence>& reads,
                          std::size_t k, bool canonical,
                          unsigned counter_bits) {
  std::size_t expected = 0;
  for (const auto& r : reads)
    if (r.size() >= k) expected += r.size() - k + 1;
  KmerCounter table(expected / 4 + 16, counter_bits);

  for (const auto& read : reads) {
    if (read.size() < k) continue;
    Kmer window = Kmer::from_sequence(read, 0, k);
    for (std::size_t i = 0;; ++i) {
      const Kmer key = canonical ? window.canonical() : window;
      table.insert_or_increment(key);
      if (i + k >= read.size()) break;
      window = window.rolled(read.at(i + k));
    }
  }
  return table;
}

}  // namespace pima::assembly
