// de Bruijn graph simplification (Velvet-style error removal).
//
// Sequencing errors inject three graph artifacts that fragment contigs:
//   * tips — short dead-end paths hanging off the true walk (an error near
//     a read end),
//   * bubbles — pairs of short parallel paths between the same endpoints
//     (an error mid-read creates an alternative spelling),
//   * low-coverage edges — chimeric k-mers seen once or twice.
// The cleaner removes them in the standard order (coverage filter → tips →
// bubbles), re-deriving the graph after each pass. The paper's pipeline
// (error-free sampled reads) does not need this; it is the extension that
// makes the assembler usable on reads with a realistic error rate.
#pragma once

#include <cstdint>

#include "assembly/debruijn.hpp"

namespace pima::assembly {

struct SimplifyParams {
  /// Drop edges with multiplicity below this (1 disables the filter). Only
  /// meaningful on graphs built with use_multiplicity = true.
  std::uint32_t min_edge_multiplicity = 1;
  /// Remove dead-end paths of at most this many edges (0 disables).
  std::size_t max_tip_length = 4;
  /// Pop bubbles whose branches are at most this many edges long
  /// (0 disables). The lower-coverage branch is removed.
  std::size_t max_bubble_length = 6;
  /// Repeat the tip/bubble passes until no change or this many rounds.
  std::size_t max_rounds = 4;
};

struct SimplifyStats {
  std::size_t low_coverage_removed = 0;
  std::size_t tips_removed = 0;        ///< edges removed by tip clipping
  std::size_t bubbles_popped = 0;      ///< branches removed
  std::size_t rounds = 0;
};

struct SimplifyResult {
  DeBruijnGraph graph;
  SimplifyStats stats;
};

/// Returns a cleaned copy of the graph.
SimplifyResult simplify_graph(const DeBruijnGraph& graph,
                              const SimplifyParams& params = {});

}  // namespace pima::assembly
