// k-mer spectrum analysis.
//
// The histogram of k-mer frequencies ("spectrum") is the standard
// diagnostic read sets get before assembly: error k-mers pile up at
// frequency 1–2, true genomic k-mers form a peak near the sequencing
// coverage, and the valley between them is the frequency cutoff that
// separates the two (what AssemblyOptions::min_kmer_freq should be set
// to). The peak position and the total solid k-mer mass also give the
// classic genome-size estimate Σ(solid counts) / peak-coverage.
#pragma once

#include <cstdint>
#include <vector>

#include "assembly/hash_table.hpp"

namespace pima::assembly {

struct Spectrum {
  /// histogram[f] = number of distinct k-mers with frequency f
  /// (index 0 unused; the last bin aggregates the tail).
  std::vector<std::uint64_t> histogram;
  std::uint64_t distinct_kmers = 0;
  std::uint64_t total_kmers = 0;

  std::uint64_t count_at(std::uint32_t freq) const {
    return freq < histogram.size() ? histogram[freq] : 0;
  }
};

/// Builds the frequency histogram from a counted table. Frequencies above
/// `max_freq` aggregate into the final bin.
Spectrum compute_spectrum(const KmerCounter& counter,
                          std::uint32_t max_freq = 255);

/// Diagnostics derived from a spectrum.
struct SpectrumAnalysis {
  /// First local minimum after frequency 1 — the error/solid cutoff.
  /// 1 when no valley exists (error-free data).
  std::uint32_t error_cutoff = 1;
  /// Frequency of the main (solid) peak at or after the cutoff.
  std::uint32_t coverage_peak = 1;
  /// Σ f·histogram[f] over solid k-mers / coverage_peak — the classic
  /// genome-size estimate.
  double genome_size_estimate = 0.0;
  /// Fraction of distinct k-mers below the cutoff (presumed errors).
  double error_kmer_fraction = 0.0;
};

SpectrumAnalysis analyze_spectrum(const Spectrum& spectrum);

}  // namespace pima::assembly
