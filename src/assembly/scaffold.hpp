// Scaffolding — stage 3 of the assembly pipeline (paper Fig. 5a, left as
// future work in the paper; implemented here as the extension).
//
// Mate pairs whose two reads land on different contigs witness that those
// contigs are adjacent in the genome, at a distance implied by the insert
// size. The scaffolder:
//   1. indexes contigs by k-mer (first k-mer of every position),
//   2. places each read (trying both strands) on a contig,
//   3. aggregates cross-contig placements into weighted links with gap
//      estimates (insert − tail of contig A − head of contig B),
//   4. chains contigs greedily along their strongest consistent links,
//   5. emits scaffolds: ordered contigs with estimated gap sizes.
//
// Orientation handling: contigs enter the scaffold forward or reverse-
// complemented as the link evidence requires.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dna/paired.hpp"
#include "dna/sequence.hpp"

namespace pima::assembly {

struct ScaffoldParams {
  std::size_t k = 21;            ///< contig-index k-mer length
  std::size_t min_links = 2;     ///< pairs required to accept a junction
  double insert_mean = 500.0;    ///< library insert mean (for gap estimates)
};

/// One placed contig within a scaffold.
struct ScaffoldEntry {
  std::size_t contig = 0;       ///< index into the input contig vector
  bool reverse = false;         ///< placed as reverse complement
  std::int64_t gap_after = 0;   ///< estimated Ns to the next entry (last: 0)
};

struct Scaffold {
  std::vector<ScaffoldEntry> entries;

  /// Total contig bases (gaps excluded).
  std::size_t contig_length(const std::vector<dna::Sequence>& contigs) const;

  /// FASTA-style rendering with gap runs of 'N' (clamped to >= 1 per gap).
  std::string spell(const std::vector<dna::Sequence>& contigs) const;
};

struct ScaffoldResult {
  std::vector<Scaffold> scaffolds;
  std::size_t links_used = 0;      ///< accepted cross-contig junctions
  std::size_t pairs_placed = 0;    ///< pairs with both mates located
  std::size_t pairs_total = 0;
};

/// Builds scaffolds from contigs and mate pairs.
ScaffoldResult scaffold_contigs(const std::vector<dna::Sequence>& contigs,
                                const std::vector<dna::ReadPair>& pairs,
                                const ScaffoldParams& params = {});

}  // namespace pima::assembly
