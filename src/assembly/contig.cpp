#include "assembly/contig.hpp"

#include <algorithm>

namespace pima::assembly {

std::vector<dna::Sequence> contigs_from_euler(const DeBruijnGraph& g,
                                              TraversalAlgorithm algo) {
  std::vector<dna::Sequence> contigs;
  for (const auto& walk : euler_walks(g, algo))
    contigs.push_back(spell_walk(g, walk));
  return contigs;
}

std::vector<dna::Sequence> contigs_from_unitigs(const DeBruijnGraph& g) {
  // Distinct-edge view: multiplicity does not affect unitig structure, but
  // branching (in/out degree over distinct edges) does.
  const std::size_t n = g.node_count();
  std::vector<std::uint32_t> in_distinct(n, 0), out_distinct(n, 0);
  for (const auto& e : g.edges()) {
    ++out_distinct[e.from];
    ++in_distinct[e.to];
  }
  auto is_through_node = [&](NodeId v) {
    return in_distinct[v] == 1 && out_distinct[v] == 1;
  };

  std::vector<bool> used(g.edge_count(), false);
  std::vector<dna::Sequence> contigs;

  auto extend = [&](std::uint32_t first_edge) {
    EdgeWalk walk{first_edge};
    used[first_edge] = true;
    NodeId v = g.edge(first_edge).to;
    while (is_through_node(v)) {
      const auto& adj = g.out_edges(v);
      std::uint32_t next = ~std::uint32_t{0};
      for (const auto e : adj)
        if (!used[e]) {
          next = e;
          break;
        }
      if (next == ~std::uint32_t{0}) break;  // single out-edge already used
      used[next] = true;
      walk.push_back(next);
      v = g.edge(next).to;
    }
    contigs.push_back(spell_walk(g, walk));
  };

  // Start unitigs at every edge leaving a junction (or path start) node.
  for (NodeId v = 0; v < n; ++v) {
    if (is_through_node(v)) continue;
    for (const auto e : g.out_edges(v))
      if (!used[e]) extend(e);
  }
  // Remaining edges belong to perfect cycles of through-nodes.
  for (std::uint32_t e = 0; e < g.edge_count(); ++e)
    if (!used[e]) extend(e);
  return contigs;
}

ContigStats compute_stats(const std::vector<dna::Sequence>& contigs) {
  ContigStats s{};
  s.count = contigs.size();
  std::vector<std::size_t> lengths;
  lengths.reserve(contigs.size());
  for (const auto& c : contigs) {
    lengths.push_back(c.size());
    s.total_length += c.size();
    s.longest = std::max(s.longest, c.size());
  }
  if (s.count == 0) return s;
  s.mean_length =
      static_cast<double>(s.total_length) / static_cast<double>(s.count);
  std::sort(lengths.rbegin(), lengths.rend());
  std::size_t acc = 0;
  for (const auto len : lengths) {
    acc += len;
    if (acc * 2 >= s.total_length) {
      s.n50 = len;
      break;
    }
  }
  return s;
}

}  // namespace pima::assembly
