#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace pima::telemetry {

namespace {

// Shortest round-trip-exact rendering: equal doubles always give equal
// strings, so deterministic values serialize bit-identically.
std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that still parses back exactly.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  out += '}';
  return out;
}

// `le` label spliced into an existing label set for histogram buckets.
std::string render_bucket_labels(const Labels& labels, const std::string& le) {
  Labels with = labels;
  with.emplace_back("le", le);
  return render_labels(with);
}

constexpr int kCounter = 0;
constexpr int kGauge = 1;
constexpr int kHistogram = 2;

const char* kind_name(int kind) {
  switch (kind) {
    case kCounter: return "counter";
    case kGauge: return "gauge";
    case kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  PIMA_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                 std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
             "histogram bounds must be strictly increasing");
}

void Histogram::observe(double v) {
  // Prometheus semantics: bucket i counts v <= bounds[i]; the last bucket
  // is +Inf and takes everything else.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto i = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  PIMA_CHECK(i < buckets_.size(), "histogram bucket index out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

void Histogram::merge_counts(const std::vector<std::uint64_t>& buckets,
                             double sum) {
  PIMA_CHECK(buckets.size() == buckets_.size(),
             "histogram merge with mismatched bucket count");
  for (std::size_t i = 0; i < buckets.size(); ++i)
    buckets_[i].fetch_add(buckets[i], std::memory_order_relaxed);
  detail::atomic_add(sum_, sum);
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (cumulative + in_bucket < target || in_bucket == 0.0) {
      cumulative += in_bucket;
      continue;
    }
    // The +Inf bucket has no upper bound: clamp to the largest finite one
    // (or 0 when the histogram has no finite bounds at all).
    if (i == bounds_.size())
      return bounds_.empty() ? 0.0 : bounds_.back();
    const double upper = bounds_[i];
    const double lower = i == 0 ? std::min(0.0, upper) : bounds_[i - 1];
    return lower + (upper - lower) * (target - cumulative) / in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

struct MetricsRegistry::Metric {
  std::string name;
  std::string help;
  Labels labels;
  MetricClass cls = MetricClass::kModel;
  int kind = kCounter;
  Counter counter;
  Gauge gauge;
  std::unique_ptr<Histogram> histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

void MetricsRegistry::set_default_labels(Labels labels) {
  std::lock_guard lock(mutex_);
  default_labels_ = std::move(labels);
}

MetricsRegistry::Metric& MetricsRegistry::find_or_create(
    const std::string& name, const std::string& help, const Labels& given,
    MetricClass cls, int kind, const std::vector<double>* bounds) {
  std::lock_guard lock(mutex_);
  Labels labels = given;
  for (const auto& d : default_labels_) labels.push_back(d);
  // '\x1f' cannot occur in names/labels, so the key sorts by family name
  // first and keeps a family's instances contiguous in export order.
  const std::string key = name + '\x1f' + render_labels(labels);
  auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    auto m = std::make_unique<Metric>();
    m->name = name;
    m->help = help;
    m->labels = labels;
    m->cls = cls;
    m->kind = kind;
    if (kind == kHistogram)
      m->histogram = std::make_unique<Histogram>(*bounds);
    it = metrics_.emplace(key, std::move(m)).first;
  }
  PIMA_CHECK(it->second->kind == kind,
             "metric '" + name + "' re-registered with a different type");
  return *it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels, MetricClass cls) {
  return find_or_create(name, help, labels, cls, kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels, MetricClass cls) {
  return find_or_create(name, help, labels, cls, kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds,
                                      const Labels& labels, MetricClass cls) {
  return *find_or_create(name, help, labels, cls, kHistogram, &bounds)
              .histogram;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return metrics_.size();
}

void MetricsRegistry::clear() {
  std::lock_guard lock(mutex_);
  metrics_.clear();
}

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  std::string family;
  for (const auto& [key, m] : metrics_) {
    if (m->name != family) {
      family = m->name;
      out << "# HELP " << m->name << ' ' << m->help << '\n';
      out << "# TYPE " << m->name << ' ' << kind_name(m->kind) << '\n';
    }
    const std::string labels = render_labels(m->labels);
    switch (m->kind) {
      case kCounter:
        out << m->name << labels << ' ' << format_double(m->counter.value())
            << '\n';
        break;
      case kGauge:
        out << m->name << labels << ' ' << format_double(m->gauge.value())
            << '\n';
        break;
      case kHistogram: {
        const Histogram& h = *m->histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket_count(i);
          out << m->name << "_bucket"
              << render_bucket_labels(m->labels, format_double(h.bounds()[i]))
              << ' ' << cumulative << '\n';
        }
        cumulative += h.bucket_count(h.bounds().size());
        out << m->name << "_bucket"
            << render_bucket_labels(m->labels, "+Inf") << ' ' << cumulative
            << '\n';
        out << m->name << "_sum" << labels << ' ' << format_double(h.sum())
            << '\n';
        out << m->name << "_count" << labels << ' ' << cumulative << '\n';
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::json_snapshot(bool model_only) const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "{\n  \"metrics\": [";
  bool first = true;
  for (const auto& [key, m] : metrics_) {
    if (model_only && m->cls != MetricClass::kModel) continue;
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << json_escape(m->name) << "\", \"type\": \""
        << kind_name(m->kind) << "\", \"class\": \""
        << (m->cls == MetricClass::kModel ? "model" : "host") << "\"";
    if (!m->labels.empty()) {
      out << ", \"labels\": {";
      for (std::size_t i = 0; i < m->labels.size(); ++i) {
        if (i > 0) out << ", ";
        out << '"' << json_escape(m->labels[i].first) << "\": \""
            << json_escape(m->labels[i].second) << '"';
      }
      out << '}';
    }
    switch (m->kind) {
      case kCounter:
        out << ", \"value\": " << format_double(m->counter.value());
        break;
      case kGauge:
        out << ", \"value\": " << format_double(m->gauge.value());
        break;
      case kHistogram: {
        const Histogram& h = *m->histogram;
        out << ", \"buckets\": [";
        for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
          if (i > 0) out << ", ";
          out << "{\"le\": ";
          if (i < h.bounds().size())
            out << format_double(h.bounds()[i]);
          else
            out << "\"+Inf\"";
          out << ", \"count\": " << h.bucket_count(i) << '}';
        }
        out << "], \"sum\": " << format_double(h.sum())
            << ", \"count\": " << h.count();
        break;
      }
    }
    out << '}';
  }
  out << "\n  ]\n}\n";
  return out.str();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Snapshot the other registry's shape under its lock, then fold without
  // holding both locks at once.
  struct Shard {
    std::string name, help;
    Labels labels;
    MetricClass cls;
    int kind;
    double scalar;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    double sum;
  };
  std::vector<Shard> shards;
  {
    std::lock_guard lock(other.mutex_);
    for (const auto& [key, m] : other.metrics_) {
      Shard s;
      s.name = m->name;
      s.help = m->help;
      s.labels = m->labels;
      s.cls = m->cls;
      s.kind = m->kind;
      s.scalar = m->kind == kGauge ? m->gauge.value() : m->counter.value();
      s.sum = 0.0;
      if (m->kind == kHistogram) {
        const Histogram& h = *m->histogram;
        s.bounds = h.bounds();
        for (std::size_t i = 0; i <= s.bounds.size(); ++i)
          s.buckets.push_back(h.bucket_count(i));
        s.sum = h.sum();
      }
      shards.push_back(std::move(s));
    }
  }
  for (const auto& s : shards) {
    switch (s.kind) {
      case kCounter:
        counter(s.name, s.help, s.labels, s.cls).add(s.scalar);
        break;
      case kGauge: {
        Gauge& g = gauge(s.name, s.help, s.labels, s.cls);
        g.set(std::max(g.value(), s.scalar));
        break;
      }
      case kHistogram: {
        Histogram& h = histogram(s.name, s.help, s.bounds, s.labels, s.cls);
        PIMA_CHECK(h.bounds() == s.bounds,
                   "histogram '" + s.name + "' merged with different buckets");
        h.merge_counts(s.buckets, s.sum);
        break;
      }
    }
  }
}

void add_breakdown_metrics(MetricsRegistry& registry,
                           const dram::EnergyBreakdown& breakdown) {
  for (const auto& row : breakdown.rows) {
    const Labels labels = {{"kind", std::string(dram::to_string(row.kind))}};
    registry
        .counter("pima_dram_commands_total",
                 "DRAM commands by command kind", labels)
        .add(static_cast<double>(row.count));
    registry
        .counter("pima_dram_energy_pj_total",
                 "simulated energy by command kind (pJ)", labels)
        .add(row.energy_pj);
    registry
        .counter("pima_dram_time_ns_total",
                 "simulated serialized time by command kind (ns)", labels)
        .add(row.time_ns);
  }
}

}  // namespace pima::telemetry
