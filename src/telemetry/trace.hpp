// Low-overhead hierarchical span tracing with Chrome trace-event export.
//
// The runtime's execution structure — pipeline stage → shard → engine
// channel → command batch — is recorded as spans into per-thread ring
// buffers and exported as Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing. Each engine channel gets its own track (tid), stage
// spans land on the controller's "main" track, and counter events render
// queue depth / retired commands as counter tracks.
//
// Hot-path cost model:
//   * disabled (the default): one relaxed atomic load per span/instant —
//     no allocation, no clock read;
//   * enabled: one steady_clock read per span endpoint plus one write into
//     a preallocated single-writer ring buffer. No locks anywhere on the
//     record path; buffer registration (once per thread) takes a mutex.
//
// Buffers are drop-newest: when a thread's ring fills, further events are
// counted (dropped()) but not stored, so published slots are write-once
// and the exporter can read them race-free (release/release on the size
// counter). The final "stall" event always lands because it is recorded by
// the watchdog/drain thread into its own, near-empty buffer.
//
// Timebase: steady_clock nanoseconds since Tracer::enable() (one shared
// epoch, so tracks align). Event names must be string literals (or strings
// outliving the tracer) — the buffer stores pointers, never copies.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pima::telemetry {

/// One recorded event. 64 bytes; stored by value in the ring.
struct TraceEvent {
  const char* name = nullptr;   ///< static string (never copied)
  char phase = 'X';             ///< 'X' complete, 'i' instant, 'C' counter,
                                ///< 's'/'f' flow start/finish
  std::uint32_t track = 0;      ///< Chrome tid: 0 = main, 1.. = channels
  std::int64_t ts_ns = 0;       ///< start, ns since the tracer epoch
  std::int64_t dur_ns = 0;      ///< span duration ('X' only)
  double value = 0.0;           ///< counter value / span argument
  const char* arg_name = nullptr;  ///< static key for `value`, or null
  std::uint64_t flow_id = 0;    ///< flow binding id ('s'/'f' only)
};

/// A trace event with owned strings — the wire/export form. Worker
/// processes serialize these over the NDJSON channel; the controller
/// re-imports them as a foreign ProcessTrace.
struct ExportedTraceEvent {
  std::string name;
  std::string arg_name;  ///< empty = none
  char phase = 'X';
  std::uint32_t track = 0;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
  double value = 0.0;
  std::uint64_t flow_id = 0;
};

/// One foreign process's worth of trace data (a `pima_devd` incarnation).
/// Timestamps must already be shifted into the importing tracer's epoch.
struct ProcessTrace {
  std::int64_t pid = 0;  ///< OS pid; keys the process — restarts get new pids
  std::string name;      ///< Perfetto process_name label
  int sort_index = 0;    ///< Perfetto process_sort_index
  std::map<std::uint32_t, std::string> track_names;
  std::vector<ExportedTraceEvent> events;
};

/// Single-writer, many-reader ring. The owning thread appends; readers see
/// a consistent prefix via the release-published size. Drop-newest on
/// overflow keeps published slots immutable.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity) : slots_(capacity) {}

  /// Owner thread only.
  void record(const TraceEvent& e) {
    const std::size_t n = size_.load(std::memory_order_relaxed);
    if (n >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots_[n] = e;
    size_.store(n + 1, std::memory_order_release);
  }

  /// Any thread: number of published (immutable) events.
  std::size_t published() const {
    return size_.load(std::memory_order_acquire);
  }
  const TraceEvent& at(std::size_t i) const { return slots_[i]; }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Process-wide trace collector: owns every thread's ring buffer, assigns
/// tracks, and renders the merged Chrome trace-event JSON.
class Tracer {
 public:
  Tracer();

  /// Starts recording. Resets the epoch; existing buffers are cleared.
  void enable(std::size_t events_per_thread = 1 << 16);
  /// Stops recording; buffers are kept for export.
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Current thread's track id for subsequently recorded events.
  void set_thread_track(std::uint32_t track);
  std::uint32_t thread_track() const;
  /// Perfetto track (thread) naming; also sets the track's sort order.
  void set_track_name(std::uint32_t track, const std::string& name);

  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Record a completed span [start_ns, start_ns + dur_ns) on the current
  /// thread's track. No-op when disabled.
  void record_complete(const char* name, std::int64_t start_ns,
                       std::int64_t dur_ns, const char* arg_name = nullptr,
                       double value = 0.0);
  /// Instant event; `track` overrides the thread's track (e.g. the
  /// watchdog marking a stalled channel's track). kThreadTrack = current.
  static constexpr std::uint32_t kThreadTrack = 0xffffffffu;
  void record_instant(const char* name, std::uint32_t track = kThreadTrack);
  /// Counter sample on a counter track named `name [<track name>]`.
  void record_counter(const char* name, double value, std::uint32_t track);
  /// Perfetto flow binding point: phase 's' opens a flow, 'f' terminates
  /// it. Both sides must use the same `flow_id` and lie inside an 'X' span
  /// on their respective tracks. `ts_ns` is explicit so the binding point
  /// can be placed at the enclosing span's start.
  void record_flow(const char* name, char phase, std::uint64_t flow_id,
                   std::int64_t ts_ns, std::uint32_t track = kThreadTrack);

  /// Merged, time-sorted Chrome trace-event JSON ("traceEvents" array plus
  /// thread-name metadata). Safe to call while writers are active: only
  /// published slots are read. Foreign processes added via put_process()
  /// render as their own pid groups with process_name metadata.
  std::string chrome_json() const;

  /// Snapshot of every published event in this process's buffers, with
  /// owned strings (cumulative — a later call returns a superset). Used by
  /// worker processes to ship their spans over the NDJSON channel.
  std::vector<ExportedTraceEvent> export_events() const;
  /// Snapshot of the track-name table.
  std::map<std::uint32_t, std::string> track_names() const;

  /// Installs (or replaces, keyed by pid) a foreign process's trace for
  /// chrome_json() merging. Worker flushes are cumulative, so replacing is
  /// idempotent across stage-boundary harvests of the same incarnation.
  void put_process(ProcessTrace p);
  std::size_t process_count() const;

  /// Total events currently published over all buffers (tests/reports).
  std::size_t event_count() const;
  std::uint64_t dropped_count() const;

  /// Drops every buffer, track name, and foreign process. Threads
  /// re-register on next use.
  void clear();

 private:
  TraceBuffer* thread_buffer();

  std::atomic<bool> enabled_{false};
  std::size_t capacity_ = 1 << 16;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  // Generation guards the thread-local buffer pointers across clear().
  // Values are process-unique (drawn from a global counter), so a Tracer
  // allocated at a dead Tracer's address can never match its stale stamps.
  std::atomic<std::uint64_t> generation_;
  mutable std::mutex mutex_;  // buffers_ + track_names_ + processes_
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
  std::map<std::uint32_t, std::string> track_names_;
  std::map<std::int64_t, ProcessTrace> processes_;  // keyed by pid
};

}  // namespace pima::telemetry
