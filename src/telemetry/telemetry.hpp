// Instrumentation macro layer — the only telemetry header hot paths
// include. With PIMA_TELEMETRY=0 (CMake option PIMA_TELEMETRY=OFF) every
// macro compiles to nothing, so instrumented code carries zero cost; with
// it on (the default) each site costs one relaxed atomic load while
// telemetry is disabled at runtime.
//
// Span taxonomy (DESIGN.md §11): spans nest pipeline stage → shard /
// submit phase → engine channel task (one per command batch). Counter
// events render queue depth and retired-task counts as Perfetto counter
// tracks; instant events mark one-shot incidents (stall, checkpoint).
#pragma once

#ifndef PIMA_TELEMETRY
#define PIMA_TELEMETRY 1
#endif

#if PIMA_TELEMETRY

#include "telemetry/session.hpp"

#define PIMA_TEL_CONCAT_INNER(a, b) a##b
#define PIMA_TEL_CONCAT(a, b) PIMA_TEL_CONCAT_INNER(a, b)

/// Scoped span on the current thread's track: PIMA_TEL_SPAN("stage:hashmap");
#define PIMA_TEL_SPAN(name) \
  ::pima::telemetry::ScopedSpan PIMA_TEL_CONCAT(pima_tel_span_, __COUNTER__)(name)

/// Scoped span with one numeric argument (shown in Perfetto's args pane).
#define PIMA_TEL_SPAN_ARG(name, arg_name, value)                          \
  ::pima::telemetry::ScopedSpan PIMA_TEL_CONCAT(pima_tel_span_,           \
                                                __COUNTER__)(name, arg_name, \
                                                             value)

/// Instant event on the current thread's track.
#define PIMA_TEL_INSTANT(name) ::pima::telemetry::tracer().record_instant(name)

/// Instant event on an explicit track (watchdog → stalled channel).
#define PIMA_TEL_INSTANT_ON(track, name) \
  ::pima::telemetry::tracer().record_instant(name, track)

/// Counter sample rendered as a per-track counter track.
#define PIMA_TEL_COUNTER(track, name, value) \
  ::pima::telemetry::tracer().record_counter(name, value, track)

/// Binds the calling thread to a track id (engine workers).
#define PIMA_TEL_SET_THREAD_TRACK(track) \
  ::pima::telemetry::tracer().set_thread_track(track)

/// Names a track in the exported trace (idempotent, cold path).
#define PIMA_TEL_NAME_TRACK(track, name) \
  ::pima::telemetry::tracer().set_track_name(track, name)

#else  // PIMA_TELEMETRY compiled out

#define PIMA_TEL_SPAN(name) ((void)0)
#define PIMA_TEL_SPAN_ARG(name, arg_name, value) ((void)0)
#define PIMA_TEL_INSTANT(name) ((void)0)
#define PIMA_TEL_INSTANT_ON(track, name) ((void)0)
#define PIMA_TEL_COUNTER(track, name, value) ((void)0)
#define PIMA_TEL_SET_THREAD_TRACK(track) ((void)0)
#define PIMA_TEL_NAME_TRACK(track, name) ((void)0)

#endif  // PIMA_TELEMETRY
