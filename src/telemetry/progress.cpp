#include "telemetry/progress.hpp"

#include <algorithm>
#include <chrono>

namespace pima::telemetry {

ProgressReporter::ProgressReporter(MetricsRegistry& registry, Options options)
    : registry_(registry), options_(options) {
  if (options_.out == nullptr) options_.out = stderr;
  if (options_.interval_s <= 0.0) return;
  thread_ = std::thread([this] { loop(); });
}

ProgressReporter::~ProgressReporter() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  stop_wake_.notify_all();
  thread_.join();
  report(options_.interval_s);  // final line with the end-state counters
}

void ProgressReporter::loop() {
  const auto interval = std::chrono::duration<double>(options_.interval_s);
  std::unique_lock lock(mutex_);
  while (!stop_) {
    if (stop_wake_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    report(options_.interval_s);
    lock.lock();
  }
}

std::string format_progress_line(const ProgressSnapshot& snapshot,
                                 double last_reads, double last_kmers,
                                 double dt_s) {
  const double reads_rate = std::max(0.0, snapshot.reads - last_reads) / dt_s;
  const double kmers_rate = std::max(0.0, snapshot.kmers - last_kmers) / dt_s;

  char eta[32] = "--";
  if (snapshot.expected > snapshot.reads && reads_rate > 0.0) {
    std::snprintf(eta, sizeof eta, "%.1fs",
                  (snapshot.expected - snapshot.reads) / reads_rate);
  } else if (snapshot.expected > 0.0 && snapshot.reads >= snapshot.expected) {
    std::snprintf(eta, sizeof eta, "done");
  }
  char line[256];
  std::snprintf(line, sizeof line,
                "[pima] reads %.0f/%.0f (%.0f/s) kmers %.0f (%.0f/s) eta %s "
                "faults det=%.0f retry=%.0f host=%.0f",
                snapshot.reads, snapshot.expected, reads_rate, snapshot.kmers,
                kmers_rate, eta, snapshot.detected, snapshot.retried,
                snapshot.fallbacks);
  return line;
}

void ProgressReporter::report(double dt_s) {
  // find-or-create with empty help: the pipeline registers these with real
  // help strings first; an early tick before that just sees zeros.
  ProgressSnapshot snapshot;
  snapshot.reads = registry_.counter(kReadsTotal, "").value();
  snapshot.expected = registry_.counter(kReadsExpected, "").value();
  snapshot.kmers = registry_.counter(kKmersTotal, "").value();
  snapshot.detected = registry_.counter(kFaultDetected, "").value();
  snapshot.retried = registry_.counter(kFaultRetried, "").value();
  snapshot.fallbacks = registry_.counter(kFaultHostFallbacks, "").value();

  const std::string line =
      format_progress_line(snapshot, last_reads_, last_kmers_, dt_s);
  last_reads_ = snapshot.reads;
  last_kmers_ = snapshot.kmers;

  std::fprintf(options_.out, "%s\n", line.c_str());
  std::fflush(options_.out);
}

}  // namespace pima::telemetry
