#include "telemetry/progress.hpp"

#include <algorithm>
#include <chrono>

namespace pima::telemetry {

ProgressReporter::ProgressReporter(MetricsRegistry& registry, Options options)
    : registry_(registry), options_(options) {
  if (options_.out == nullptr) options_.out = stderr;
  if (options_.interval_s <= 0.0) return;
  thread_ = std::thread([this] { loop(); });
}

ProgressReporter::~ProgressReporter() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  stop_wake_.notify_all();
  thread_.join();
  report(options_.interval_s);  // final line with the end-state counters
}

void ProgressReporter::loop() {
  const auto interval = std::chrono::duration<double>(options_.interval_s);
  std::unique_lock lock(mutex_);
  while (!stop_) {
    if (stop_wake_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    report(options_.interval_s);
    lock.lock();
  }
}

void ProgressReporter::report(double dt_s) {
  // find-or-create with empty help: the pipeline registers these with real
  // help strings first; an early tick before that just sees zeros.
  const double reads = registry_.counter(kReadsTotal, "").value();
  const double expected = registry_.counter(kReadsExpected, "").value();
  const double kmers = registry_.counter(kKmersTotal, "").value();
  const double detected = registry_.counter(kFaultDetected, "").value();
  const double retried = registry_.counter(kFaultRetried, "").value();
  const double fallbacks = registry_.counter(kFaultHostFallbacks, "").value();

  const double reads_rate = std::max(0.0, reads - last_reads_) / dt_s;
  const double kmers_rate = std::max(0.0, kmers - last_kmers_) / dt_s;
  last_reads_ = reads;
  last_kmers_ = kmers;

  char eta[32] = "--";
  if (expected > reads && reads_rate > 0.0) {
    std::snprintf(eta, sizeof eta, "%.1fs", (expected - reads) / reads_rate);
  } else if (expected > 0.0 && reads >= expected) {
    std::snprintf(eta, sizeof eta, "done");
  }
  std::fprintf(options_.out,
               "[pima] reads %.0f/%.0f (%.0f/s) kmers %.0f (%.0f/s) eta %s "
               "faults det=%.0f retry=%.0f host=%.0f\n",
               reads, expected, reads_rate, kmers, kmers_rate, eta, detected,
               retried, fallbacks);
  std::fflush(options_.out);
}

}  // namespace pima::telemetry
