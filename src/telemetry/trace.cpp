#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pima::telemetry {

namespace {

// Thread-local buffer/track state. The (owner, generation) stamp
// invalidates the cached pointer when Tracer::clear() drops the buffers or
// when a different Tracer instance (tests construct their own) uses this
// thread, and the pointer is re-resolved on next use — so a stale thread
// can never write into freed memory (buffers are owned by the tracer and
// only freed in clear(), which bumps the generation first).
struct ThreadState {
  const void* owner = nullptr;
  TraceBuffer* buffer = nullptr;
  std::uint64_t generation = 0;
  std::uint32_t track = 0;
};
thread_local ThreadState tls;

// Process-unique generation values (see the header): every Tracer birth
// and every clear() draws a fresh stamp.
std::atomic<std::uint64_t> next_generation{1};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

Tracer::Tracer()
    : generation_(next_generation.fetch_add(1, std::memory_order_relaxed)) {}

void Tracer::enable(std::size_t events_per_thread) {
  clear();
  {
    std::lock_guard lock(mutex_);
    capacity_ = events_per_thread == 0 ? 1 : events_per_thread;
    epoch_ = std::chrono::steady_clock::now();
  }
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

void Tracer::clear() {
  enabled_.store(false, std::memory_order_release);
  generation_.store(next_generation.fetch_add(1, std::memory_order_relaxed),
                    std::memory_order_release);
  std::lock_guard lock(mutex_);
  buffers_.clear();
  track_names_.clear();
  processes_.clear();
}

TraceBuffer* Tracer::thread_buffer() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (tls.buffer == nullptr || tls.owner != this || tls.generation != gen) {
    std::lock_guard lock(mutex_);
    buffers_.push_back(std::make_unique<TraceBuffer>(capacity_));
    tls.owner = this;
    tls.buffer = buffers_.back().get();
    tls.generation = gen;
  }
  return tls.buffer;
}

void Tracer::set_thread_track(std::uint32_t track) { tls.track = track; }

std::uint32_t Tracer::thread_track() const { return tls.track; }

void Tracer::set_track_name(std::uint32_t track, const std::string& name) {
  std::lock_guard lock(mutex_);
  track_names_[track] = name;
}

void Tracer::record_complete(const char* name, std::int64_t start_ns,
                             std::int64_t dur_ns, const char* arg_name,
                             double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.phase = 'X';
  e.track = tls.track;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  e.arg_name = arg_name;
  e.value = value;
  thread_buffer()->record(e);
}

void Tracer::record_instant(const char* name, std::uint32_t track) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.phase = 'i';
  e.track = track == kThreadTrack ? tls.track : track;
  e.ts_ns = now_ns();
  thread_buffer()->record(e);
}

void Tracer::record_counter(const char* name, double value,
                            std::uint32_t track) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.phase = 'C';
  e.track = track;
  e.ts_ns = now_ns();
  e.arg_name = "value";
  e.value = value;
  thread_buffer()->record(e);
}

void Tracer::record_flow(const char* name, char phase, std::uint64_t flow_id,
                         std::int64_t ts_ns, std::uint32_t track) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.phase = phase;
  e.track = track == kThreadTrack ? tls.track : track;
  e.ts_ns = ts_ns;
  e.flow_id = flow_id;
  thread_buffer()->record(e);
}

std::vector<ExportedTraceEvent> Tracer::export_events() const {
  std::lock_guard lock(mutex_);
  std::vector<ExportedTraceEvent> out;
  for (const auto& b : buffers_) {
    const std::size_t n = b->published();
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = b->at(i);
      ExportedTraceEvent x;
      x.name = e.name == nullptr ? "" : e.name;
      x.arg_name = e.arg_name == nullptr ? "" : e.arg_name;
      x.phase = e.phase;
      x.track = e.track;
      x.ts_ns = e.ts_ns;
      x.dur_ns = e.dur_ns;
      x.value = e.value;
      x.flow_id = e.flow_id;
      out.push_back(std::move(x));
    }
  }
  return out;
}

std::map<std::uint32_t, std::string> Tracer::track_names() const {
  std::lock_guard lock(mutex_);
  return track_names_;
}

void Tracer::put_process(ProcessTrace p) {
  std::lock_guard lock(mutex_);
  processes_[p.pid] = std::move(p);
}

std::size_t Tracer::process_count() const {
  std::lock_guard lock(mutex_);
  return processes_.size();
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b->published();
  return n;
}

std::uint64_t Tracer::dropped_count() const {
  std::lock_guard lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& b : buffers_) n += b->dropped();
  return n;
}

std::string Tracer::chrome_json() const {
  std::lock_guard lock(mutex_);
  // The tracer's own events render under a synthetic pid 1; each foreign
  // process (a `pima_devd` incarnation) renders under its OS pid with
  // process_name metadata, so a restarted worker appears as a new track
  // group. Gather everything, then sort by timestamp so Perfetto's
  // importer sees a monotone stream per track.
  constexpr std::int64_t kOwnPid = 1;
  struct Row {
    std::int64_t pid;
    ExportedTraceEvent e;
  };
  std::vector<Row> rows;
  for (const auto& b : buffers_) {
    const std::size_t n = b->published();
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = b->at(i);
      ExportedTraceEvent x;
      x.name = e.name == nullptr ? "" : e.name;
      x.arg_name = e.arg_name == nullptr ? "" : e.arg_name;
      x.phase = e.phase;
      x.track = e.track;
      x.ts_ns = e.ts_ns;
      x.dur_ns = e.dur_ns;
      x.value = e.value;
      x.flow_id = e.flow_id;
      rows.push_back({kOwnPid, std::move(x)});
    }
  }
  for (const auto& [pid, proc] : processes_)
    for (const auto& e : proc.events) rows.push_back({pid, e});
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.e.ts_ns < b.e.ts_ns;
  });

  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    out << (first ? "\n" : ",\n");
    first = false;
  };
  const auto process_meta = [&](std::int64_t pid, const std::string& name,
                                int sort_index) {
    sep();
    out << "{\"ph\": \"M\", \"pid\": " << pid
        << ", \"name\": \"process_name\", \"args\": {\"name\": \""
        << json_escape(name) << "\"}}";
    sep();
    out << "{\"ph\": \"M\", \"pid\": " << pid
        << ", \"name\": \"process_sort_index\", \"args\": {\"sort_index\": "
        << sort_index << "}}";
  };
  const auto thread_meta = [&](std::int64_t pid, std::uint32_t track,
                               const std::string& name) {
    sep();
    out << "{\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << track
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
        << json_escape(name) << "\"}}";
    sep();
    out << "{\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << track
        << ", \"name\": \"thread_sort_index\", \"args\": {\"sort_index\": "
        << track << "}}";
  };
  // Track (thread) naming metadata. sort_index keeps "main" on top and
  // channels in numeric order. The pid-1 process label only matters (and
  // is only emitted) when foreign processes share the trace.
  if (!processes_.empty()) process_meta(kOwnPid, "controller", 0);
  for (const auto& [track, name] : track_names_)
    thread_meta(kOwnPid, track, name);
  for (const auto& [pid, proc] : processes_) {
    process_meta(pid, proc.name, proc.sort_index);
    for (const auto& [track, name] : proc.track_names)
      thread_meta(pid, track, name);
  }
  char num[40];
  const auto fmt_us = [&](std::int64_t ns) {
    // Chrome wants microseconds; keep ns resolution in the fraction.
    std::snprintf(num, sizeof num, "%.3f", static_cast<double>(ns) / 1000.0);
    return num;
  };
  const auto fmt_val = [&](double v) {
    std::snprintf(num, sizeof num, "%.17g", v);
    return num;
  };
  const auto track_label = [&](std::int64_t pid, std::uint32_t track) {
    const std::map<std::uint32_t, std::string>* names = &track_names_;
    if (pid != kOwnPid) {
      const auto it = processes_.find(pid);
      names = it != processes_.end() ? &it->second.track_names : nullptr;
    }
    if (names != nullptr) {
      const auto it = names->find(track);
      if (it != names->end()) return it->second;
    }
    return "track " + std::to_string(track);
  };
  for (const auto& row : rows) {
    const ExportedTraceEvent& e = row.e;
    sep();
    // Counter events are keyed by (pid, name) in the trace-event model, so
    // the owning track's name is folded into the counter name to get one
    // counter track per channel.
    std::string name = json_escape(e.name);
    if (e.phase == 'C')
      name += " [" + json_escape(track_label(row.pid, e.track)) + "]";
    out << "{\"name\": \"" << name << "\", \"ph\": \"" << e.phase
        << "\", \"pid\": " << row.pid << ", \"tid\": " << e.track
        << ", \"ts\": " << fmt_us(e.ts_ns);
    switch (e.phase) {
      case 'X':
        out << ", \"dur\": " << fmt_us(e.dur_ns);
        if (!e.arg_name.empty())
          out << ", \"args\": {\"" << json_escape(e.arg_name)
              << "\": " << fmt_val(e.value) << '}';
        break;
      case 'i':
        out << ", \"s\": \"t\"";
        break;
      case 'C':
        out << ", \"args\": {\"" << json_escape(e.arg_name)
            << "\": " << fmt_val(e.value) << '}';
        break;
      case 's':
      case 'f':
        // Perfetto flow events: both binding points share an id; the
        // finish side binds to the *enclosing* slice ("bp": "e").
        out << ", \"cat\": \"rpc\", \"id\": " << e.flow_id;
        if (e.phase == 'f') out << ", \"bp\": \"e\"";
        break;
      default:
        break;
    }
    out << '}';
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace pima::telemetry
