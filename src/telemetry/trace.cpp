#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pima::telemetry {

namespace {

// Thread-local buffer/track state. The (owner, generation) stamp
// invalidates the cached pointer when Tracer::clear() drops the buffers or
// when a different Tracer instance (tests construct their own) uses this
// thread, and the pointer is re-resolved on next use — so a stale thread
// can never write into freed memory (buffers are owned by the tracer and
// only freed in clear(), which bumps the generation first).
struct ThreadState {
  const void* owner = nullptr;
  TraceBuffer* buffer = nullptr;
  std::uint64_t generation = 0;
  std::uint32_t track = 0;
};
thread_local ThreadState tls;

// Process-unique generation values (see the header): every Tracer birth
// and every clear() draws a fresh stamp.
std::atomic<std::uint64_t> next_generation{1};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

Tracer::Tracer()
    : generation_(next_generation.fetch_add(1, std::memory_order_relaxed)) {}

void Tracer::enable(std::size_t events_per_thread) {
  clear();
  {
    std::lock_guard lock(mutex_);
    capacity_ = events_per_thread == 0 ? 1 : events_per_thread;
    epoch_ = std::chrono::steady_clock::now();
  }
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

void Tracer::clear() {
  enabled_.store(false, std::memory_order_release);
  generation_.store(next_generation.fetch_add(1, std::memory_order_relaxed),
                    std::memory_order_release);
  std::lock_guard lock(mutex_);
  buffers_.clear();
  track_names_.clear();
}

TraceBuffer* Tracer::thread_buffer() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (tls.buffer == nullptr || tls.owner != this || tls.generation != gen) {
    std::lock_guard lock(mutex_);
    buffers_.push_back(std::make_unique<TraceBuffer>(capacity_));
    tls.owner = this;
    tls.buffer = buffers_.back().get();
    tls.generation = gen;
  }
  return tls.buffer;
}

void Tracer::set_thread_track(std::uint32_t track) { tls.track = track; }

std::uint32_t Tracer::thread_track() const { return tls.track; }

void Tracer::set_track_name(std::uint32_t track, const std::string& name) {
  std::lock_guard lock(mutex_);
  track_names_[track] = name;
}

void Tracer::record_complete(const char* name, std::int64_t start_ns,
                             std::int64_t dur_ns, const char* arg_name,
                             double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.phase = 'X';
  e.track = tls.track;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  e.arg_name = arg_name;
  e.value = value;
  thread_buffer()->record(e);
}

void Tracer::record_instant(const char* name, std::uint32_t track) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.phase = 'i';
  e.track = track == kThreadTrack ? tls.track : track;
  e.ts_ns = now_ns();
  thread_buffer()->record(e);
}

void Tracer::record_counter(const char* name, double value,
                            std::uint32_t track) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.phase = 'C';
  e.track = track;
  e.ts_ns = now_ns();
  e.arg_name = "value";
  e.value = value;
  thread_buffer()->record(e);
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b->published();
  return n;
}

std::uint64_t Tracer::dropped_count() const {
  std::lock_guard lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& b : buffers_) n += b->dropped();
  return n;
}

std::string Tracer::chrome_json() const {
  std::lock_guard lock(mutex_);
  // Gather published events from every buffer, then sort by timestamp so
  // Perfetto's importer sees a monotone stream per track.
  std::vector<TraceEvent> events;
  for (const auto& b : buffers_) {
    const std::size_t n = b->published();
    for (std::size_t i = 0; i < n; ++i) events.push_back(b->at(i));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });

  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    out << (first ? "\n" : ",\n");
    first = false;
  };
  // Track (thread) naming metadata. sort_index keeps "main" on top and
  // channels in numeric order.
  for (const auto& [track, name] : track_names_) {
    sep();
    out << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << track
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
        << json_escape(name) << "\"}}";
    sep();
    out << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << track
        << ", \"name\": \"thread_sort_index\", \"args\": {\"sort_index\": "
        << track << "}}";
  }
  char num[40];
  const auto fmt_us = [&](std::int64_t ns) {
    // Chrome wants microseconds; keep ns resolution in the fraction.
    std::snprintf(num, sizeof num, "%.3f", static_cast<double>(ns) / 1000.0);
    return num;
  };
  const auto fmt_val = [&](double v) {
    std::snprintf(num, sizeof num, "%.17g", v);
    return num;
  };
  const auto track_label = [&](std::uint32_t track) {
    const auto it = track_names_.find(track);
    return it != track_names_.end() ? it->second
                                    : "track " + std::to_string(track);
  };
  for (const auto& e : events) {
    sep();
    // Counter events are keyed by (pid, name) in the trace-event model, so
    // the owning track's name is folded into the counter name to get one
    // counter track per channel.
    std::string name = json_escape(e.name);
    if (e.phase == 'C') name += " [" + json_escape(track_label(e.track)) + "]";
    out << "{\"name\": \"" << name << "\", \"ph\": \"" << e.phase
        << "\", \"pid\": 1, \"tid\": " << e.track
        << ", \"ts\": " << fmt_us(e.ts_ns);
    switch (e.phase) {
      case 'X':
        out << ", \"dur\": " << fmt_us(e.dur_ns);
        if (e.arg_name != nullptr)
          out << ", \"args\": {\"" << json_escape(e.arg_name)
              << "\": " << fmt_val(e.value) << '}';
        break;
      case 'i':
        out << ", \"s\": \"t\"";
        break;
      case 'C':
        out << ", \"args\": {\"" << json_escape(e.arg_name)
            << "\": " << fmt_val(e.value) << '}';
        break;
      default:
        break;
    }
    out << '}';
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace pima::telemetry
