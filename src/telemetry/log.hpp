// Structured event log: one process-wide logger, two sinks.
//
// Every diagnostic the platform emits — worker crashes, restarts, pool
// degradation, I/O fault activation, skipped jobs — goes through here
// instead of ad-hoc fprintf(stderr). Each event carries a severity, a
// typed event code (dot-separated, aligned with the common/error.hpp
// taxonomy via log_code_for()), monotonic + wall-clock timestamps, and
// optional structured fields ({job=, device=, ...}).
//
// Sinks:
//   * human-readable stderr rendering (the default, always on unless
//     disabled): `pima[warn] worker.failed: <message> (device=2)`;
//   * NDJSON (--log-json PATH|-): one JSON object per line, machine-
//     parseable, append-mode so a serve process can be tailed.
// Every emitted event is also pushed into the FlightRecorder's bounded
// ring, so crash reports always contain the most recent diagnostics.
//
// Rate limiting: a per-code token bucket (default 10 events/s, burst 20)
// bounds log volume when a failure repeats in a tight loop; suppressed
// events are counted and the count is attached to the next event that
// passes (`"suppressed": N`).
//
// Signal safety: log() allocates and takes a mutex — it must NOT be
// called from signal handlers (those use FlightRecorder's raw-write
// path). The *fast path* is signal-clean by construction: would_log() is
// one relaxed atomic load, and a call below the active level returns
// before any allocation or lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

namespace pima::telemetry {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };
const char* to_string(LogLevel level);

/// One structured key/value attached to an event. `numeric` values are
/// emitted unquoted in the NDJSON sink.
struct LogField {
  std::string key;
  std::string value;
  bool numeric = false;

  static LogField str(std::string key, std::string value);
  static LogField num(std::string key, double value);
  static LogField uint(std::string key, std::uint64_t value);
};

class Logger {
 public:
  /// Process-wide instance (leaked, like TelemetrySession — log sites run
  /// during static destruction of other objects). First use installs the
  /// fsio log hook so common-layer diagnostics flow through the same
  /// sinks.
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  /// The allocation-free fast path: hot call sites guard with this.
  bool would_log(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  void set_stderr_enabled(bool on);
  /// NDJSON sink path: "" disables, "-" writes to stdout, anything else
  /// opens the file in append mode. Throws IoError if the file cannot be
  /// opened.
  void set_json_path(const std::string& path);
  /// Token-bucket tuning (per event code). Zero tokens_per_s disables
  /// rate limiting.
  void set_rate_limit(double tokens_per_s, double burst);

  void log(LogLevel level, const char* code, const std::string& message,
           std::vector<LogField> fields = {});

  /// Events dropped by the rate limiter since construction/reset.
  std::uint64_t suppressed_total() const {
    return suppressed_total_.load(std::memory_order_relaxed);
  }

  /// Restores defaults: level info, stderr on, no JSON sink, default
  /// rate limit, counters zeroed.
  void reset_for_tests();

 private:
  Logger();
  ~Logger() = delete;

  struct Impl;
  Impl* impl_;  // cold state behind a mutex (sinks, buckets)
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<std::uint64_t> suppressed_total_{0};
};

/// Convenience forwarder: `log_event(LogLevel::kWarn, "worker.failed",
/// msg, {LogField::uint("device", d)})`.
void log_event(LogLevel level, const char* code, const std::string& message,
               std::vector<LogField> fields = {});

/// Maps an exception to its typed event code, most-derived first —
/// mirrors common/error.hpp's exit_code_for().
const char* log_code_for(const std::exception& e);

}  // namespace pima::telemetry
