#include "telemetry/log.hpp"

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

#include "common/error.hpp"
#include "common/fsio.hpp"
#include "telemetry/flight.hpp"

namespace pima::telemetry {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::int64_t wall_us_now() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void fsio_log_forward(fsio::LogSeverity severity, const char* code,
                      const char* message) {
  LogLevel level = LogLevel::kInfo;
  if (severity == fsio::LogSeverity::kWarn) level = LogLevel::kWarn;
  if (severity == fsio::LogSeverity::kError) level = LogLevel::kError;
  Logger::instance().log(level, code, message);
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

LogField LogField::str(std::string key, std::string value) {
  LogField f;
  f.key = std::move(key);
  f.value = std::move(value);
  return f;
}

LogField LogField::num(std::string key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  LogField f;
  f.key = std::move(key);
  f.value = buf;
  f.numeric = true;
  return f;
}

LogField LogField::uint(std::string key, std::uint64_t value) {
  LogField f;
  f.key = std::move(key);
  f.value = std::to_string(value);
  f.numeric = true;
  return f;
}

struct Logger::Impl {
  std::mutex mutex;
  bool stderr_enabled = true;
  std::FILE* json = nullptr;  // owned unless json_is_stdout
  bool json_is_stdout = false;
  std::string json_path;
  double rate = 10.0;   // tokens per second, per code; 0 = unlimited
  double burst = 20.0;  // bucket capacity
  struct Bucket {
    double tokens = 0.0;
    std::int64_t last_ns = 0;
    std::uint64_t suppressed = 0;
    bool primed = false;
  };
  std::map<std::string, Bucket> buckets;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  std::int64_t mono_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
  }

  void close_json() {
    if (json != nullptr && !json_is_stdout) std::fclose(json);
    json = nullptr;
    json_is_stdout = false;
    json_path.clear();
  }
};

Logger::Logger() : impl_(new Impl) {
  // Route the common layer's diagnostics through the same sinks.
  fsio::set_log_fn(&fsio_log_forward);
}

Logger& Logger::instance() {
  static Logger* logger = new Logger();  // leaked by design
  return *logger;
}

void Logger::set_stderr_enabled(bool on) {
  std::lock_guard lock(impl_->mutex);
  impl_->stderr_enabled = on;
}

void Logger::set_json_path(const std::string& path) {
  std::lock_guard lock(impl_->mutex);
  impl_->close_json();
  if (path.empty()) return;
  if (path == "-") {
    impl_->json = stdout;
    impl_->json_is_stdout = true;
    impl_->json_path = path;
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) throw IoError("cannot open log file " + path);
  impl_->json = f;
  impl_->json_path = path;
}

void Logger::set_rate_limit(double tokens_per_s, double burst) {
  std::lock_guard lock(impl_->mutex);
  impl_->rate = tokens_per_s < 0.0 ? 0.0 : tokens_per_s;
  impl_->burst = burst < 1.0 ? 1.0 : burst;
  impl_->buckets.clear();
}

void Logger::log(LogLevel level, const char* code, const std::string& message,
                 std::vector<LogField> fields) {
  if (!would_log(level)) return;  // the allocation-free fast path
  std::lock_guard lock(impl_->mutex);
  const std::int64_t mono = impl_->mono_ns();

  // Per-code token bucket. Suppressed events vanish from every sink (and
  // the flight ring); the count rides on the next event that passes.
  std::uint64_t suppressed_here = 0;
  if (impl_->rate > 0.0) {
    auto& b = impl_->buckets[code];
    if (!b.primed) {
      b.tokens = impl_->burst;
      b.last_ns = mono;
      b.primed = true;
    }
    b.tokens += static_cast<double>(mono - b.last_ns) * 1e-9 * impl_->rate;
    if (b.tokens > impl_->burst) b.tokens = impl_->burst;
    b.last_ns = mono;
    if (b.tokens < 1.0) {
      ++b.suppressed;
      suppressed_total_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    b.tokens -= 1.0;
    suppressed_here = b.suppressed;
    b.suppressed = 0;
  }

  // NDJSON rendering — built unconditionally: the flight-recorder ring
  // stores the same preformatted line the JSON sink writes.
  std::string line;
  line.reserve(160 + message.size());
  line += "{\"t_mono_ns\": ";
  line += std::to_string(mono);
  line += ", \"t_wall_us\": ";
  line += std::to_string(wall_us_now());
  line += ", \"level\": \"";
  line += to_string(level);
  line += "\", \"code\": \"";
  line += json_escape(code);
  line += "\", \"msg\": \"";
  line += json_escape(message);
  line += '"';
  if (suppressed_here > 0) {
    line += ", \"suppressed\": ";
    line += std::to_string(suppressed_here);
  }
  for (const auto& f : fields) {
    line += ", \"";
    line += json_escape(f.key);
    line += "\": ";
    if (f.numeric) {
      line += f.value;
    } else {
      line += '"';
      line += json_escape(f.value);
      line += '"';
    }
  }
  line += '}';

  FlightRecorder::instance().note(line.c_str(), line.size());

  if (impl_->stderr_enabled) {
    std::string human;
    human.reserve(64 + message.size());
    human += "pima[";
    human += to_string(level);
    human += "] ";
    human += code;
    human += ": ";
    human += message;
    if (!fields.empty()) {
      human += " (";
      bool first = true;
      for (const auto& f : fields) {
        if (!first) human += ' ';
        first = false;
        human += f.key;
        human += '=';
        human += f.value;
      }
      human += ')';
    }
    if (suppressed_here > 0) {
      human += " [suppressed ";
      human += std::to_string(suppressed_here);
      human += " similar]";
    }
    human += '\n';
    std::fputs(human.c_str(), stderr);
  }
  if (impl_->json != nullptr) {
    std::fputs(line.c_str(), impl_->json);
    std::fputc('\n', impl_->json);
    std::fflush(impl_->json);
  }
}

void Logger::reset_for_tests() {
  std::lock_guard lock(impl_->mutex);
  impl_->close_json();
  impl_->stderr_enabled = true;
  impl_->rate = 10.0;
  impl_->burst = 20.0;
  impl_->buckets.clear();
  level_.store(static_cast<int>(LogLevel::kInfo), std::memory_order_relaxed);
  suppressed_total_.store(0, std::memory_order_relaxed);
}

void log_event(LogLevel level, const char* code, const std::string& message,
               std::vector<LogField> fields) {
  Logger::instance().log(level, code, message, std::move(fields));
}

const char* log_code_for(const std::exception& e) {
  // Most-derived first, mirroring exit_code_for().
  if (dynamic_cast<const CorruptCheckpointError*>(&e) != nullptr)
    return "error.corrupt_checkpoint";
  if (dynamic_cast<const EngineStalledError*>(&e) != nullptr)
    return "error.engine_stalled";
  if (dynamic_cast<const WorkerCrashedError*>(&e) != nullptr)
    return "error.worker_crashed";
  if (dynamic_cast<const DeadlineExceededError*>(&e) != nullptr)
    return "error.deadline";
  if (dynamic_cast<const AdmissionRejectedError*>(&e) != nullptr)
    return "error.admission_rejected";
  if (dynamic_cast<const CancelledError*>(&e) != nullptr)
    return "error.cancelled";
  if (dynamic_cast<const InputFormatError*>(&e) != nullptr)
    return "error.input_format";
  if (dynamic_cast<const IoError*>(&e) != nullptr) return "error.io";
  if (dynamic_cast<const SimulationError*>(&e) != nullptr)
    return "error.simulation";
  if (dynamic_cast<const PreconditionError*>(&e) != nullptr)
    return "error.precondition";
  return "error.unknown";
}

}  // namespace pima::telemetry
