// Process-wide telemetry session: one Tracer + one MetricsRegistry plus
// the output sinks they flush to.
//
// The session is an intentionally leaked singleton (never destroyed), so
// worker threads that outlive their Engine — e.g. a wedged channel worker
// abandoned by the watchdog — can still touch their ring buffers safely at
// process exit.
//
// flush() writes every configured sink: the Chrome trace JSON to the
// trace path, and the Prometheus text + JSON snapshot to the metrics path
// (JSON at `<path>.json`). It is idempotent and callable mid-run — the
// engine watchdog flushes on a stall so a wedged run still leaves a
// readable trace behind, and a normal run's final flush simply overwrites
// the partial files.
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pima::telemetry {

class TelemetrySession {
 public:
  static TelemetrySession& instance();

  Tracer& tracer() { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }

  void enable_metrics() {
    metrics_enabled_.store(true, std::memory_order_release);
  }
  void disable_metrics() {
    metrics_enabled_.store(false, std::memory_order_release);
  }
  bool metrics_enabled() const {
    return metrics_enabled_.load(std::memory_order_relaxed);
  }

  /// Sink paths; empty disables the corresponding flush output.
  void set_trace_path(const std::string& path);
  void set_metrics_path(const std::string& path);

  /// Writes all configured sinks (trace JSON; Prometheus text + JSON
  /// snapshot). Serialized by an internal mutex — safe from the watchdog
  /// while the main thread is also flushing. Throws IoError if a sink
  /// cannot be written.
  void flush();

  /// Writes the Chrome trace JSON / metrics to an explicit path.
  void write_trace(const std::string& path) const;
  void write_metrics(const std::string& prometheus_path) const;

  /// Tests: disable everything, drop buffers, clear metrics and sinks.
  void reset();

 private:
  TelemetrySession() = default;

  Tracer tracer_;
  MetricsRegistry metrics_;
  std::atomic<bool> metrics_enabled_{false};
  mutable std::mutex flush_mutex_;
  std::string trace_path_;
  std::string metrics_path_;
};

inline Tracer& tracer() { return TelemetrySession::instance().tracer(); }

namespace detail {
/// Per-thread registry override (see ScopedMetricsRegistry). Nullptr means
/// "use the process-wide session registry".
inline thread_local MetricsRegistry* tls_metrics_override = nullptr;
}  // namespace detail

/// The calling thread's effective registry: the thread-local override when
/// one is installed (a service job's private registry), otherwise the
/// process-wide session registry. Every instrumentation site resolves
/// through here, so a multi-tenant host can give each job its own metric
/// namespace without touching the instrumented code.
inline MetricsRegistry& metrics() {
  MetricsRegistry* o = detail::tls_metrics_override;
  return o != nullptr ? *o : TelemetrySession::instance().metrics();
}
inline bool metrics_enabled() {
  return TelemetrySession::instance().metrics_enabled();
}

/// RAII: routes this thread's telemetry::metrics() to `registry` for the
/// scope's lifetime (nullptr restores the process-wide registry). The
/// runtime engine captures the submitting thread's override when it spawns
/// channel workers and its watchdog, so a pipeline run started under a
/// scoped registry records *all* of its metrics — controller, workers,
/// recovery events — into that registry.
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry* registry)
      : previous_(detail::tls_metrics_override) {
    detail::tls_metrics_override = registry;
  }
  ~ScopedMetricsRegistry() { detail::tls_metrics_override = previous_; }
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

  /// The override active on the calling thread (nullptr = process-wide).
  static MetricsRegistry* current() { return detail::tls_metrics_override; }

 private:
  MetricsRegistry* previous_;
};

/// RAII span: captures the start time on construction and records a
/// complete event on destruction. Free when tracing is disabled (one
/// relaxed load). `name`/`arg_name` must be string literals.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* arg_name = nullptr,
                      double value = 0.0) {
    Tracer& t = tracer();
    if (!t.enabled()) return;
    name_ = name;
    arg_name_ = arg_name;
    value_ = value;
    start_ns_ = t.now_ns();
  }
  ~ScopedSpan() {
    if (name_ == nullptr) return;
    Tracer& t = tracer();
    t.record_complete(name_, start_ns_, t.now_ns() - start_ns_, arg_name_,
                      value_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  double value_ = 0.0;
  std::int64_t start_ns_ = 0;
};

}  // namespace pima::telemetry
