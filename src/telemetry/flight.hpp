// Flight recorder: an always-on bounded ring of recent structured-log
// events plus registered state snapshots, dumped as `crash_report.json`
// when something goes wrong.
//
// Triggers (all call dump()):
//   * a device worker is classified crashed / wedged / torn,
//   * the engine watchdog declares a stall,
//   * the process pool degrades to in-process execution,
//   * a fatal signal arrives (SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT).
//
// The ring stores PREFORMATTED JSON object lines in fixed-size slots —
// formatting happens at log time, in normal context — so the fatal-signal
// path can assemble a valid report with nothing but raw write(2) calls.
// Each slot carries an atomic sequence stamp: the writer clears it,
// copies the bytes, then publishes, so a reader (including the signal
// handler) never sees a torn, invalid-JSON slot.
//
// Normal-context dumps go through fsio::atomic_write_file (site
// "crash_report"), include registered state snapshots (engine queues,
// worker states), and never throw — a crash report must not mask the
// failure it documents.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace pima::telemetry {

class FlightRecorder {
 public:
  static constexpr std::size_t kRingSlots = 256;
  static constexpr std::size_t kSlotBytes = 512;
  static constexpr const char* kSchema = "pima.crash_report.v1";

  /// Process-wide instance (leaked — dump() runs during teardown paths).
  static FlightRecorder& instance();

  /// Where dump() writes. Default: "crash_report.json" in the working
  /// directory. Stored in a fixed buffer so the signal path can read it;
  /// paths longer than the buffer are rejected (PreconditionError).
  void set_output_path(const std::string& path);
  std::string output_path() const;

  /// Appends one preformatted JSON object line to the ring (no trailing
  /// newline required). Lines that don't fit a slot are replaced by a
  /// small truncation marker object, keeping every slot valid JSON.
  /// Called by Logger for every emitted event; safe from any thread.
  void note(const char* json_object, std::size_t len);

  /// Registers a named state-snapshot provider; the returned id
  /// unregisters it. Providers run during normal-context dumps only and
  /// must return a valid JSON value (object preferred). A throwing
  /// provider contributes an error marker instead of killing the dump.
  int add_snapshot_provider(const std::string& name,
                            std::function<std::string()> fn);
  void remove_snapshot_provider(int id);

  /// Writes the crash report (schema pima.crash_report.v1) atomically.
  /// Never throws; returns false if the write failed.
  bool dump(const char* reason, const std::string& detail) noexcept;
  /// The report body dump() would write (tests).
  std::string render(const char* reason, const std::string& detail) const;

  /// Installs handlers for fatal signals that write the report with raw
  /// syscalls, then re-raise with the default disposition. Idempotent.
  void install_fatal_signal_handlers();
  /// Async-signal-safe report write (used by the handlers; public for
  /// tests). Writes to output_path() directly — not atomically, the
  /// process is dying.
  void signal_dump(int signo);

  std::uint64_t dump_count() const {
    return dumps_.load(std::memory_order_relaxed);
  }

  /// Clears the ring, providers, and counters; restores the default path.
  void reset_for_tests();

 private:
  FlightRecorder();
  ~FlightRecorder() = delete;

  struct Slot {
    std::atomic<std::uint64_t> ready{0};  // 0 = empty/in-flight
    char bytes[kSlotBytes];
    std::uint32_t len = 0;
  };

  struct Impl;
  Impl* impl_;  // providers + path string (mutex-guarded, cold)
  Slot ring_[kRingSlots];
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> dumps_{0};
  // Fixed-buffer copy of the output path for the signal path.
  char path_bytes_[1024];
  std::atomic<std::size_t> path_len_;
};

}  // namespace pima::telemetry
