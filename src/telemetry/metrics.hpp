// Metrics registry: named counters, gauges and fixed-bucket histograms
// with deterministic merge semantics and Prometheus/JSON export.
//
// Naming convention (DESIGN.md §11): every metric is `pima_<area>_<what>`
// with a unit suffix (`_ns`, `_pj`, `_seconds`) and `_total` for counters,
// labels for enumerable dimensions (stage, kind, channel, subarray).
//
// Determinism: each metric carries a MetricClass.
//   * kModel metrics derive only from simulated state (command counts,
//     simulated ns/pJ, fault counters). They are bit-identical for every
//     channel count — the registry's JSON snapshot restricted to kModel is
//     a determinism oracle, exactly like reduce_parallel for DeviceStats.
//     Concurrent updates must add exact doubles (integers < 2^53, or a
//     single-writer accumulation) so the commutative fold stays exact.
//   * kHost metrics measure the host machine (wall-clock latencies, queue
//     occupancy, per-channel task counts). They vary run to run and with
//     --threads, and are excluded from the deterministic snapshot.
//
// Merging follows the runtime's reduction discipline (runtime/stats.hpp):
// merge_from() folds another registry in sorted metric order — counters
// and histogram buckets add, gauges take the maximum — so per-channel
// shards folded in channel index order give bit-identical results.
//
// Thread safety: metric handles returned by the registry are stable for
// the registry's lifetime and internally atomic; registration and export
// take a mutex (cold paths only).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "dram/trace.hpp"

namespace pima::telemetry {

enum class MetricClass {
  kModel,  ///< simulated-state derived: bit-identical for any --threads
  kHost,   ///< host-machine measurement: varies run to run
};

/// Label set of one metric instance, rendered in the given order (callers
/// pass a fixed order, so exports are stable).
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
/// Exact lock-free add for std::atomic<double> (CAS loop; C++20
/// fetch_add(double) is not yet universal).
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonically increasing value (Prometheus counter).
class Counter {
 public:
  void add(double v) { detail::atomic_add(value_, v); }
  void increment() { add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time value (Prometheus gauge). Merge takes the maximum.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` (upper-inclusive) bucket
/// semantics and an implicit +Inf overflow bucket.
class Histogram {
 public:
  /// `bounds` are the strictly increasing finite bucket upper bounds.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the +Inf bucket).
  std::uint64_t bucket_count(std::size_t i) const;
  std::uint64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate (0 ≤ q ≤ 1) by linear interpolation inside the
  /// covering bucket, Prometheus histogram_quantile-style. Values in the
  /// +Inf bucket clamp to the largest finite bound. Returns 0 when empty.
  double quantile(double q) const;

  /// Folds another histogram's per-bucket counts and sum into this one
  /// (MetricsRegistry::merge_from). `buckets` must have bounds().size()+1
  /// entries matching this histogram's bucket layout.
  void merge_counts(const std::vector<std::uint64_t>& buckets, double sum);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

/// Find-or-create registry of named metrics. Export order is sorted by
/// (name, labels), so serialization is deterministic.
class MetricsRegistry {
 public:
  // Both out of line: Metric is incomplete here, and inline defaulted
  // special members would instantiate the map's deleter against it.
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {},
                   MetricClass cls = MetricClass::kModel);
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {},
               MetricClass cls = MetricClass::kModel);
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, const Labels& labels = {},
                       MetricClass cls = MetricClass::kHost);

  /// Prometheus text exposition (one # HELP/# TYPE block per family).
  std::string prometheus_text() const;

  /// JSON snapshot. `model_only` restricts to MetricClass::kModel — the
  /// deterministic subset that must be bit-identical for any --threads.
  std::string json_snapshot(bool model_only = false) const;

  /// Deterministic fold of another registry: counters and histogram
  /// buckets add, gauges take the max. Metrics absent here are created
  /// with the other registry's shape. Fold shards in channel index order
  /// for reproducible results (reduce_parallel discipline).
  void merge_from(const MetricsRegistry& other);

  /// Labels appended to every metric registered from now on (multi-tenant
  /// hosts: a per-job registry tags everything with {job="<id>"}, so
  /// merge_from into a daemon-wide registry keeps jobs' series distinct).
  /// Set before the first registration; does not relabel existing metrics.
  void set_default_labels(Labels labels);

  std::size_t size() const;
  void clear();

 private:
  struct Metric;
  Metric& find_or_create(const std::string& name, const std::string& help,
                         const Labels& labels, MetricClass cls, int kind,
                         const std::vector<double>* bounds);

  mutable std::mutex mutex_;
  Labels default_labels_;
  std::map<std::string, std::unique_ptr<Metric>> metrics_;
};

/// Rolls an EnergyBreakdown (dram/trace.hpp) into per-CommandKind model
/// counters: pima_dram_{commands,energy_pj,time_ns}_total{kind=...}. Using
/// the breakdown itself as the source guarantees the metrics can never
/// drift from the Fig. 9-style tables rendered from the same struct.
void add_breakdown_metrics(MetricsRegistry& registry,
                           const dram::EnergyBreakdown& breakdown);

}  // namespace pima::telemetry
