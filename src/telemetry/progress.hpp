// Periodic progress reporter: a background thread that samples the live
// telemetry counters every interval and prints a one-line status to
// stderr — reads/s, k-mers/s, an ETA for the read stream, and the live
// fault-recovery counters. Purely observational: it only reads atomics,
// never blocks the pipeline, and stops (with a final line) on destruction.
#pragma once

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "telemetry/metrics.hpp"

namespace pima::telemetry {

/// Counter/gauge names the reporter samples (shared with the pipeline's
/// instrumentation so both sides agree on the wiring).
inline constexpr const char* kReadsTotal = "pima_reads_total";
inline constexpr const char* kReadsExpected = "pima_reads_expected";
inline constexpr const char* kKmersTotal = "pima_kmers_total";
inline constexpr const char* kFaultDetected = "pima_fault_detected_total";
inline constexpr const char* kFaultRetried = "pima_fault_retried_total";
inline constexpr const char* kFaultHostFallbacks =
    "pima_fault_host_fallbacks_total";

/// One sampled tick of the counters the reporter watches. Decoupled from
/// the registry and the clock so the rate/ETA math is unit-testable.
struct ProgressSnapshot {
  double reads = 0.0;
  double expected = 0.0;
  double kmers = 0.0;
  double detected = 0.0;
  double retried = 0.0;
  double fallbacks = 0.0;
};

/// Renders one status line (without trailing newline) from the current
/// snapshot, the previous tick's totals and the elapsed interval. ETA is
/// "--" until a positive read rate exists, then a seconds estimate, then
/// "done" once reads have caught up with expected.
std::string format_progress_line(const ProgressSnapshot& snapshot,
                                 double last_reads, double last_kmers,
                                 double dt_s);

class ProgressReporter {
 public:
  struct Options {
    double interval_s = 1.0;
    std::FILE* out = nullptr;  ///< defaults to stderr
  };

  /// Starts the reporting thread over `registry` (usually
  /// telemetry::metrics()). Does nothing when interval_s <= 0.
  ProgressReporter(MetricsRegistry& registry, Options options);
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

 private:
  void loop();
  void report(double dt_s);

  MetricsRegistry& registry_;
  Options options_;
  double last_reads_ = 0.0;
  double last_kmers_ = 0.0;
  std::mutex mutex_;
  std::condition_variable stop_wake_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace pima::telemetry
