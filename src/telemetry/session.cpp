#include "telemetry/session.hpp"

#include "common/error.hpp"
#include "common/fsio.hpp"

namespace pima::telemetry {

TelemetrySession& TelemetrySession::instance() {
  // Deliberately leaked (see header): the function-local static pointer
  // keeps the object reachable, so LeakSanitizer stays quiet and detached
  // worker threads can outlive every other static.
  static TelemetrySession* session = new TelemetrySession();
  return *session;
}

void TelemetrySession::set_trace_path(const std::string& path) {
  std::lock_guard lock(flush_mutex_);
  trace_path_ = path;
}

void TelemetrySession::set_metrics_path(const std::string& path) {
  std::lock_guard lock(flush_mutex_);
  metrics_path_ = path;
}

namespace {

// Torn-write-safe: a monitoring scraper reading the previous trace or
// metrics file never observes a truncated one (fsio site "telemetry").
void write_file(const std::string& path, const std::string& content) {
  fsio::atomic_write_file(path, content, "telemetry");
}

}  // namespace

void TelemetrySession::write_trace(const std::string& path) const {
  write_file(path, tracer_.chrome_json());
}

void TelemetrySession::write_metrics(const std::string& prometheus_path) const {
  write_file(prometheus_path, metrics_.prometheus_text());
  write_file(prometheus_path + ".json", metrics_.json_snapshot());
}

void TelemetrySession::flush() {
  std::lock_guard lock(flush_mutex_);
  if (!trace_path_.empty()) write_trace(trace_path_);
  if (!metrics_path_.empty()) write_metrics(metrics_path_);
}

void TelemetrySession::reset() {
  tracer_.clear();
  metrics_.clear();
  disable_metrics();
  std::lock_guard lock(flush_mutex_);
  trace_path_.clear();
  metrics_path_.clear();
}

}  // namespace pima::telemetry
