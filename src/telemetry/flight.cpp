#include "telemetry/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/fsio.hpp"

namespace pima::telemetry {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// write(2) everything or give up — the signal path has no better option.
void write_fully(int fd, const char* bytes, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, bytes + done, len - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    done += static_cast<std::size_t>(n);
  }
}

extern "C" void pima_fatal_signal_handler(int signo) {
  FlightRecorder::instance().signal_dump(signo);
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

struct FlightRecorder::Impl {
  mutable std::mutex mutex;
  struct Provider {
    int id;
    std::string name;
    std::function<std::string()> fn;
  };
  std::vector<Provider> providers;
  int next_id = 1;
};

FlightRecorder::FlightRecorder() : impl_(new Impl) {
  const char* def = "crash_report.json";
  std::memcpy(path_bytes_, def, std::strlen(def) + 1);
  path_len_.store(std::strlen(def), std::memory_order_release);
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked by design
  return *recorder;
}

void FlightRecorder::set_output_path(const std::string& path) {
  PIMA_CHECK(!path.empty() && path.size() < sizeof path_bytes_,
             "crash-report path must be non-empty and fit the fixed buffer");
  std::lock_guard lock(impl_->mutex);
  std::memcpy(path_bytes_, path.c_str(), path.size() + 1);
  path_len_.store(path.size(), std::memory_order_release);
}

std::string FlightRecorder::output_path() const {
  std::lock_guard lock(impl_->mutex);
  return std::string(path_bytes_, path_len_.load(std::memory_order_acquire));
}

void FlightRecorder::note(const char* json_object, std::size_t len) {
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[seq % kRingSlots];
  slot.ready.store(0, std::memory_order_release);
  if (len < kSlotBytes) {
    std::memcpy(slot.bytes, json_object, len);
    slot.len = static_cast<std::uint32_t>(len);
  } else {
    // Keep the slot valid JSON rather than truncating mid-string.
    const int n = std::snprintf(slot.bytes, kSlotBytes,
                                "{\"code\": \"log.oversized\", \"len\": %zu}",
                                len);
    slot.len = n > 0 ? static_cast<std::uint32_t>(n) : 0;
  }
  slot.ready.store(seq + 1, std::memory_order_release);
}

int FlightRecorder::add_snapshot_provider(const std::string& name,
                                          std::function<std::string()> fn) {
  std::lock_guard lock(impl_->mutex);
  const int id = impl_->next_id++;
  impl_->providers.push_back({id, name, std::move(fn)});
  return id;
}

void FlightRecorder::remove_snapshot_provider(int id) {
  std::lock_guard lock(impl_->mutex);
  auto& ps = impl_->providers;
  ps.erase(std::remove_if(ps.begin(), ps.end(),
                          [id](const Impl::Provider& p) { return p.id == id; }),
           ps.end());
}

std::string FlightRecorder::render(const char* reason,
                                   const std::string& detail) const {
  // Snapshot the ring first (stamped copies, oldest first), then run the
  // providers outside any slot access.
  struct Line {
    std::uint64_t stamp;
    std::string text;
  };
  std::vector<Line> lines;
  for (std::size_t i = 0; i < kRingSlots; ++i) {
    const Slot& slot = ring_[i];
    const std::uint64_t before = slot.ready.load(std::memory_order_acquire);
    if (before == 0) continue;
    std::string text(slot.bytes, slot.len);
    if (slot.ready.load(std::memory_order_acquire) != before)
      continue;  // overwritten mid-copy; drop the torn read
    lines.push_back({before, std::move(text)});
  }
  std::sort(lines.begin(), lines.end(),
            [](const Line& a, const Line& b) { return a.stamp < b.stamp; });

  const std::int64_t wall_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::string out;
  out += "{\"schema\": \"";
  out += kSchema;
  out += "\",\n \"reason\": \"";
  out += json_escape(reason);
  out += "\",\n \"detail\": \"";
  out += json_escape(detail);
  out += "\",\n \"pid\": ";
  out += std::to_string(static_cast<long>(::getpid()));
  out += ",\n \"t_wall_us\": ";
  out += std::to_string(wall_us);
  out += ",\n \"events\": [";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    out += lines[i].text;
  }
  out += "\n ],\n \"state\": {";
  std::lock_guard lock(impl_->mutex);
  bool first = true;
  for (const auto& p : impl_->providers) {
    out += first ? "\n  \"" : ",\n  \"";
    first = false;
    out += json_escape(p.name);
    out += "\": ";
    try {
      out += p.fn();
    } catch (const std::exception& e) {
      out += "{\"error\": \"" + json_escape(e.what()) + "\"}";
    } catch (...) {
      out += "{\"error\": \"unknown\"}";
    }
  }
  out += "\n }\n}\n";
  return out;
}

bool FlightRecorder::dump(const char* reason,
                          const std::string& detail) noexcept {
  try {
    const std::string body = render(reason, detail);
    fsio::atomic_write_file(output_path(), body, "crash_report");
    dumps_.fetch_add(1, std::memory_order_relaxed);
    return true;
  } catch (...) {
    // A crash report must never mask the failure it documents.
    return false;
  }
}

void FlightRecorder::install_fatal_signal_handlers() {
  static std::atomic<bool> installed{false};
  if (installed.exchange(true, std::memory_order_acq_rel)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = &pima_fatal_signal_handler;
  sigemptyset(&sa.sa_mask);
  for (const int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT})
    ::sigaction(signo, &sa, nullptr);
}

void FlightRecorder::signal_dump(int signo) {
  // Raw syscalls only: the ring slots are preformatted JSON and the path
  // lives in a fixed buffer, so this needs nothing but open/write/close.
  const int fd = ::open(path_bytes_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  char head[192];
  int n = std::snprintf(head, sizeof head,
                        "{\"schema\": \"%s\",\n \"reason\": \"fatal_signal\","
                        "\n \"signal\": %d,\n \"pid\": %ld,\n \"events\": [",
                        kSchema, signo, static_cast<long>(::getpid()));
  if (n > 0) write_fully(fd, head, static_cast<std::size_t>(n));
  // Oldest-first: walk the ring starting just past the write cursor.
  const std::uint64_t cur = seq_.load(std::memory_order_acquire);
  bool first = true;
  for (std::size_t i = 0; i < kRingSlots; ++i) {
    const Slot& slot = ring_[(cur + i) % kRingSlots];
    const std::uint64_t stamp = slot.ready.load(std::memory_order_acquire);
    if (stamp == 0) continue;
    write_fully(fd, first ? "\n  " : ",\n  ", first ? 3 : 4);
    first = false;
    write_fully(fd, slot.bytes, slot.len);
  }
  write_fully(fd, "\n ],\n \"state\": {}\n}\n", 20);
  ::close(fd);
}

void FlightRecorder::reset_for_tests() {
  std::lock_guard lock(impl_->mutex);
  for (auto& slot : ring_) slot.ready.store(0, std::memory_order_release);
  seq_.store(0, std::memory_order_release);
  dumps_.store(0, std::memory_order_release);
  impl_->providers.clear();
  const char* def = "crash_report.json";
  std::memcpy(path_bytes_, def, std::strlen(def) + 1);
  path_len_.store(std::strlen(def), std::memory_order_release);
}

}  // namespace pima::telemetry
