// Differential verification harness: production model vs golden oracle.
//
// Runs one AAP program instruction by instruction against both the
// word-parallel production model (dram::Device) and the deliberately-naive
// golden reference (golden::GoldenDevice), diffing the touched rows and the
// carry latch after every instruction, the full device state periodically,
// and all read/reduce result values. The first mismatch is returned as a
// Divergence pinpointing the command index, sub-array, row and bit position
// that first disagreed.
//
// Completeness argument: every state-changing command touches only the rows
// it names (plus the latch), and those are diffed immediately after the
// command retires — so any divergence is caught at the instruction that
// created it, never masked by later overwrites. The periodic full-state
// diffs are belt and braces against that very assumption being wrong.
//
// Rejection symmetry is part of the contract: a program must either execute
// on both models or be rejected by both (PreconditionError). One-sided
// rejection is reported as a divergence just like a state mismatch.
#pragma once

#include <optional>
#include <string>

#include "dram/isa.hpp"
#include "golden/golden.hpp"

namespace pima::verify {

/// Where the first disagreement was observed.
enum class DivergenceSite {
  kRow,        ///< a stored row bit differs
  kLatch,      ///< a carry-latch bit differs
  kResult,     ///< a ROW_READ / reduction / popcount value differs
  kRejection,  ///< one model rejected the instruction, the other executed it
};

/// First point at which the two models disagreed.
struct Divergence {
  DivergenceSite site = DivergenceSite::kRow;
  std::size_t command_index = 0;  ///< instruction index within the program
  std::size_t subarray = 0;       ///< flat sub-array index
  std::string command_text;       ///< to_text of the offending instruction
  dram::RowAddr row = 0;          ///< differing row (site == kRow)
  std::size_t bit = 0;            ///< first differing bit/column
  bool device_bit = false;        ///< production model's value of that bit
  bool golden_bit = false;        ///< golden model's value of that bit
  std::string detail;             ///< extra context (messages, result values)

  /// One-paragraph human-readable report.
  std::string report() const;
};

struct DifferentialOptions {
  /// Full-device diff every N instructions (0 disables the periodic sweep;
  /// the per-instruction touched-row diff and the final full diff always
  /// run).
  std::size_t full_diff_period = 64;
  /// When true (default), an instruction rejected by BOTH models counts as
  /// agreement and execution stops there. Set false for captured traces,
  /// where every command already executed once and any rejection means the
  /// replay geometry is wrong — reported as a kRejection divergence.
  bool accept_symmetric_rejection = true;
};

/// Full state diff: every instantiated sub-array of either device, all rows
/// plus the latch. `command_index`/`command_text` of the returned divergence
/// are left for the caller to fill in.
std::optional<Divergence> diff_state(const dram::Device& device,
                                     const golden::GoldenDevice& golden);

/// Diffs one sub-array (all rows + latch).
std::optional<Divergence> diff_subarray(const dram::Subarray& sa,
                                        const golden::GoldenSubArray& gsa,
                                        std::size_t flat);

/// Executes `program` on both models, diffing as described above. Both
/// devices must start in matching state (freshly constructed, or previously
/// diffed clean). Returns the first divergence, or nullopt if the models
/// agree over the whole program. A program rejected by *both* models is
/// agreement: execution stops at the rejected instruction with nullopt.
std::optional<Divergence> run_differential(
    dram::Device& device, golden::GoldenDevice& golden,
    const dram::Program& program, const DifferentialOptions& options = {});

/// Convenience: builds both devices from the geometry and runs fault-free.
std::optional<Divergence> run_differential(
    const dram::Geometry& geometry, const dram::Program& program,
    const DifferentialOptions& options = {});

}  // namespace pima::verify
