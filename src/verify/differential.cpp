#include "verify/differential.hpp"

#include <sstream>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace pima::verify {
namespace {

/// Rows whose contents an instruction may have changed (size expansion
/// included). The latch is handled separately.
std::vector<dram::RowAddr> touched_rows(const dram::Instruction& inst) {
  using dram::Opcode;
  std::vector<dram::RowAddr> rows;
  switch (inst.op) {
    case Opcode::kAapCopy:
      for (std::size_t r = 0; r < inst.size; ++r) {
        rows.push_back(inst.src1 + r);
        rows.push_back(inst.dst + r);
      }
      break;
    case Opcode::kAapXnor:
    case Opcode::kAapXor:
    case Opcode::kSum:
      rows.push_back(inst.src1);
      rows.push_back(inst.src2);
      for (std::size_t r = 0; r < inst.size; ++r) rows.push_back(inst.dst + r);
      break;
    case Opcode::kAapTra:
      rows.push_back(inst.src1);
      rows.push_back(inst.src2);
      rows.push_back(inst.src3);
      for (std::size_t r = 0; r < inst.size; ++r) rows.push_back(inst.dst + r);
      break;
    case Opcode::kRowWrite:
      for (std::size_t r = 0; r < inst.size; ++r) rows.push_back(inst.src1 + r);
      break;
    case Opcode::kResetLatch:
    case Opcode::kRowRead:
    case Opcode::kDpuAnd:
    case Opcode::kDpuOr:
    case Opcode::kDpuPopcount:
      break;  // state-preserving (latch aside)
  }
  return rows;
}

bool touches_latch(dram::Opcode op) {
  return op == dram::Opcode::kAapTra || op == dram::Opcode::kResetLatch;
}

std::optional<Divergence> diff_bits(const BitVector& device_bits,
                                    const BitVector& golden_bits,
                                    DivergenceSite site, std::size_t flat,
                                    dram::RowAddr row) {
  if (device_bits == golden_bits) return std::nullopt;
  Divergence d;
  d.site = site;
  d.subarray = flat;
  d.row = row;
  const std::size_t n = std::min(device_bits.size(), golden_bits.size());
  for (std::size_t c = 0; c < n; ++c) {
    if (device_bits.get(c) != golden_bits.get(c)) {
      d.bit = c;
      d.device_bit = device_bits.get(c);
      d.golden_bit = golden_bits.get(c);
      return d;
    }
  }
  // Sizes differ with a common prefix — report the first missing bit.
  d.bit = n;
  d.detail = "row widths differ between the models";
  return d;
}

std::optional<Divergence> diff_rows(const dram::Subarray& sa,
                                    const golden::GoldenSubArray& gsa,
                                    std::size_t flat,
                                    const std::vector<dram::RowAddr>& rows) {
  for (const auto r : rows)
    if (auto d = diff_bits(sa.peek_row(r), gsa.row_bits(r),
                           DivergenceSite::kRow, flat, r))
      return d;
  return std::nullopt;
}

template <typename T>
std::optional<Divergence> diff_result_tail(const std::vector<T>& device_vals,
                                           const std::vector<T>& golden_vals,
                                           const char* what) {
  PIMA_CHECK(device_vals.size() == golden_vals.size(),
             "result streams out of step");
  if (device_vals.empty()) return std::nullopt;
  const auto& dv = device_vals.back();
  const auto& gv = golden_vals.back();
  if (dv == gv) return std::nullopt;
  Divergence d;
  d.site = DivergenceSite::kResult;
  std::ostringstream out;
  out << what << " #" << (device_vals.size() - 1) << " differs";
  if constexpr (std::is_same_v<T, BitVector>) {
    const auto bit_diff = diff_bits(dv, gv, DivergenceSite::kResult, 0, 0);
    if (bit_diff) {
      d.bit = bit_diff->bit;
      d.device_bit = bit_diff->device_bit;
      d.golden_bit = bit_diff->golden_bit;
      out << " first at bit " << d.bit;
    }
  } else {
    out << ": device=" << dv << " golden=" << gv;
  }
  d.detail = out.str();
  return d;
}

void append(std::vector<BitVector>& into, std::vector<BitVector>&& from) {
  for (auto& v : from) into.push_back(std::move(v));
}
void append(std::vector<bool>& into, const std::vector<bool>& from) {
  into.insert(into.end(), from.begin(), from.end());
}
void append(std::vector<std::size_t>& into,
            const std::vector<std::size_t>& from) {
  into.insert(into.end(), from.begin(), from.end());
}

}  // namespace

std::string Divergence::report() const {
  std::ostringstream out;
  out << "divergence at command " << command_index;
  if (!command_text.empty()) out << " [" << command_text << "]";
  out << " sub-array " << subarray;
  switch (site) {
    case DivergenceSite::kRow:
      out << " row " << row << " bit " << bit << ": device="
          << (device_bit ? 1 : 0) << " golden=" << (golden_bit ? 1 : 0);
      break;
    case DivergenceSite::kLatch:
      out << " carry latch bit " << bit << ": device=" << (device_bit ? 1 : 0)
          << " golden=" << (golden_bit ? 1 : 0);
      break;
    case DivergenceSite::kResult:
      out << " result mismatch";
      break;
    case DivergenceSite::kRejection:
      out << " rejection asymmetry";
      break;
  }
  if (!detail.empty()) out << " (" << detail << ")";
  return out.str();
}

std::optional<Divergence> diff_subarray(const dram::Subarray& sa,
                                        const golden::GoldenSubArray& gsa,
                                        std::size_t flat) {
  const auto& geom = sa.geometry();
  for (dram::RowAddr r = 0; r < geom.rows; ++r)
    if (auto d = diff_bits(sa.peek_row(r), gsa.row_bits(r),
                           DivergenceSite::kRow, flat, r))
      return d;
  return diff_bits(sa.peek_latch(), gsa.latch_bits(), DivergenceSite::kLatch,
                   flat, 0);
}

std::optional<Divergence> diff_state(const dram::Device& device,
                                     const golden::GoldenDevice& golden) {
  const std::size_t total = device.geometry().total_subarrays();
  for (std::size_t flat = 0; flat < total; ++flat) {
    const dram::Subarray* sa = device.subarray_if(flat);
    const golden::GoldenSubArray* gsa = golden.subarray_if(flat);
    if (sa == nullptr && gsa == nullptr) continue;
    // One side instantiated, the other not: an uninstantiated sub-array is
    // all zeros, so the instantiated side must be all zeros too.
    if (sa == nullptr || gsa == nullptr) {
      const auto& geom = device.geometry();
      for (dram::RowAddr r = 0; r < geom.rows; ++r) {
        const BitVector bits = sa ? sa->peek_row(r) : gsa->row_bits(r);
        const BitVector zero(bits.size());
        const BitVector& device_bits = sa ? bits : zero;
        const BitVector& golden_bits = sa ? zero : bits;
        if (auto d = diff_bits(device_bits, golden_bits, DivergenceSite::kRow,
                               flat, r))
          return d;
      }
      const BitVector latch = sa ? sa->peek_latch() : gsa->latch_bits();
      const BitVector zero(latch.size());
      if (auto d = diff_bits(sa ? latch : zero, sa ? zero : latch,
                             DivergenceSite::kLatch, flat, 0))
        return d;
      continue;
    }
    if (auto d = diff_subarray(*sa, *gsa, flat)) return d;
  }
  return std::nullopt;
}

std::optional<Divergence> run_differential(dram::Device& device,
                                           golden::GoldenDevice& golden,
                                           const dram::Program& program,
                                           const DifferentialOptions& options) {
  dram::ExecutionResults device_results;
  golden::GoldenResults golden_results;

  for (std::size_t i = 0; i < program.size(); ++i) {
    const auto& inst = program[i];
    const dram::Program single{inst};

    bool device_rejected = false;
    bool golden_rejected = false;
    std::string device_msg;
    std::string golden_msg;
    try {
      auto r = dram::execute(device, single);
      append(device_results.rows_read, std::move(r.rows_read));
      append(device_results.reductions, r.reductions);
      append(device_results.popcounts, r.popcounts);
    } catch (const PreconditionError& e) {
      device_rejected = true;
      device_msg = e.what();
    }
    try {
      auto r = golden::execute(golden, single);
      append(golden_results.rows_read, std::move(r.rows_read));
      append(golden_results.reductions, r.reductions);
      append(golden_results.popcounts, r.popcounts);
    } catch (const PreconditionError& e) {
      golden_rejected = true;
      golden_msg = e.what();
    }

    if (device_rejected != golden_rejected) {
      Divergence d;
      d.site = DivergenceSite::kRejection;
      d.command_index = i;
      d.subarray = inst.subarray;
      d.command_text = dram::to_text(inst);
      d.detail = device_rejected
                     ? "device rejected (" + device_msg + "), golden executed"
                     : "golden rejected (" + golden_msg + "), device executed";
      return d;
    }
    if (device_rejected) {
      if (options.accept_symmetric_rejection) return std::nullopt;  // agree
      Divergence d;
      d.site = DivergenceSite::kRejection;
      d.command_index = i;
      d.subarray = inst.subarray;
      d.command_text = dram::to_text(inst);
      d.detail = "both models rejected (" + device_msg +
                 ") — replay geometry does not fit the trace";
      return d;
    }

    // Diff the instruction's footprint immediately.
    auto& sa = device.subarray(inst.subarray);
    auto& gsa = golden.subarray(inst.subarray);
    auto fill = [&](Divergence d) {
      d.command_index = i;
      if (d.site != DivergenceSite::kResult) d.subarray = inst.subarray;
      d.command_text = dram::to_text(inst);
      return d;
    };
    if (auto d = diff_rows(sa, gsa, inst.subarray, touched_rows(inst)))
      return fill(std::move(*d));
    if (touches_latch(inst.op))
      if (auto d = diff_bits(sa.peek_latch(), gsa.latch_bits(),
                             DivergenceSite::kLatch, inst.subarray, 0))
        return fill(std::move(*d));
    if (auto d = diff_result_tail(device_results.rows_read,
                                  golden_results.rows_read, "ROW_READ"))
      return fill(std::move(*d));
    if (auto d = diff_result_tail(device_results.reductions,
                                  golden_results.reductions, "reduction"))
      return fill(std::move(*d));
    if (auto d = diff_result_tail(device_results.popcounts,
                                  golden_results.popcounts, "popcount"))
      return fill(std::move(*d));

    if (options.full_diff_period != 0 && (i + 1) % options.full_diff_period == 0)
      if (auto d = diff_state(device, golden)) return fill(std::move(*d));
  }

  if (auto d = diff_state(device, golden)) {
    d->command_index = program.size();
    d->command_text = "<final full-state diff>";
    return d;
  }
  return std::nullopt;
}

std::optional<Divergence> run_differential(const dram::Geometry& geometry,
                                           const dram::Program& program,
                                           const DifferentialOptions& options) {
  dram::Device device(geometry);
  golden::GoldenDevice golden(geometry);
  return run_differential(device, golden, program, options);
}

}  // namespace pima::verify
