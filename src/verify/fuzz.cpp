#include "verify/fuzz.hpp"

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "core/layout.hpp"

namespace pima::verify {
namespace {

using dram::Instruction;
using dram::Opcode;
using dram::RowAddr;

class Generator {
 public:
  explicit Generator(const FuzzOptions& options)
      : opts_(options),
        rng_(options.seed),
        layout_(core::ShardLayout::for_geometry(options.geometry)) {
    const auto& g = opts_.geometry;
    // The rows bugs live at: edges of the sub-array, edges of the hash-table
    // shard regions, and the row right before the compute region.
    interesting_ = {0,
                    1,
                    g.data_rows() - 1,
                    g.data_rows() >= 2 ? g.data_rows() - 2 : 0,
                    layout_.kmer_rows,
                    layout_.kmer_rows + layout_.value_rows,
                    layout_.rows_used() > 0 ? layout_.rows_used() - 1 : 0};
    for (auto& r : interesting_) r = std::min<RowAddr>(r, g.data_rows() - 1);
  }

  dram::Program generate() {
    dram::Program program;
    program.reserve(opts_.ops);
    for (std::size_t i = 0; i < opts_.ops; ++i) program.push_back(next());
    return program;
  }

 private:
  Instruction next() {
    const auto& g = opts_.geometry;
    Instruction inst;
    inst.subarray = pick_subarray();
    // Weighted op mix, biased toward the state-churning AAP primitives.
    const std::uint64_t w = rng_.uniform(100);
    if (w < 22) {  // AAP copy, occasionally multi-row
      inst.op = Opcode::kAapCopy;
      inst.size = rng_.uniform(10) == 0 ? 1 + rng_.uniform(4) : 1;
      const std::size_t span = inst.size;
      do {
        inst.src1 = any_row(span);
        inst.dst = any_row(span);
      } while (inst.src1 == inst.dst);
    } else if (w < 36) {
      inst.op = Opcode::kAapXnor;
      two_compute_rows(inst);
      inst.dst = any_row(1);
    } else if (w < 50) {
      inst.op = Opcode::kAapXor;
      two_compute_rows(inst);
      inst.dst = any_row(1);
    } else if (w < 64) {
      inst.op = Opcode::kAapTra;
      three_compute_rows(inst);
      inst.dst = any_row(1);
    } else if (w < 74) {
      inst.op = Opcode::kSum;
      two_compute_rows(inst);
      inst.dst = any_row(1);
    } else if (w < 79) {
      inst.op = Opcode::kResetLatch;
    } else if (w < 89) {
      inst.op = Opcode::kRowWrite;
      inst.src1 = any_row(1);
      inst.payload = random_row();
    } else if (w < 95) {
      inst.op = Opcode::kRowRead;
      inst.src1 = any_row(1);
    } else {
      const std::uint64_t k = rng_.uniform(3);
      inst.op = k == 0   ? Opcode::kDpuAnd
                : k == 1 ? Opcode::kDpuOr
                         : Opcode::kDpuPopcount;
      inst.src1 = any_row(1);
      inst.width = rng_.uniform(g.columns + 1);
    }
    return inst;
  }

  std::size_t pick_subarray() { return rng_.uniform(opts_.subarrays); }

  /// A data row, biased (1 in 3) toward the interesting boundary rows.
  RowAddr data_row() {
    const auto& g = opts_.geometry;
    if (rng_.uniform(3) == 0)
      return interesting_[rng_.uniform(interesting_.size())];
    return rng_.uniform(g.data_rows());
  }

  /// Any row a copy/read/write may address; `span` consecutive rows must
  /// fit (span <= 4 always fits from a data row: the geometry guarantees at
  /// least 4 compute rows past the data region).
  RowAddr any_row(std::size_t span) {
    const auto& g = opts_.geometry;
    if (span <= g.compute_rows && rng_.uniform(5) == 0)  // 20%: compute row
      return g.data_rows() + rng_.uniform(g.compute_rows - span + 1);
    return data_row();
  }

  void two_compute_rows(Instruction& inst) {
    const auto& g = opts_.geometry;
    const RowAddr base = g.data_rows();
    inst.src1 = base + rng_.uniform(g.compute_rows);
    do {
      inst.src2 = base + rng_.uniform(g.compute_rows);
    } while (inst.src2 == inst.src1);
  }

  void three_compute_rows(Instruction& inst) {
    two_compute_rows(inst);
    const auto& g = opts_.geometry;
    const RowAddr base = g.data_rows();
    do {
      inst.src3 = base + rng_.uniform(g.compute_rows);
    } while (inst.src3 == inst.src1 || inst.src3 == inst.src2);
  }

  BitVector random_row() {
    const auto& g = opts_.geometry;
    BitVector bits(g.columns);
    for (std::size_t c = 0; c < g.columns; ++c)
      bits.set(c, rng_.uniform(2) == 1);
    return bits;
  }

  FuzzOptions opts_;
  Rng rng_;
  core::ShardLayout layout_;
  std::vector<RowAddr> interesting_;
};

}  // namespace

dram::Program generate_program(const FuzzOptions& options) {
  PIMA_CHECK(options.subarrays > 0, "fuzzer needs at least one sub-array");
  PIMA_CHECK(options.subarrays <= options.geometry.total_subarrays(),
             "more fuzz targets than sub-arrays in the geometry");
  options.geometry.validate();
  return Generator(options).generate();
}

std::optional<Divergence> run_candidate(const dram::Program& program,
                                        const FuzzOptions& options,
                                        const Prelude& prelude) {
  dram::Device device(options.geometry);
  golden::GoldenDevice golden(options.geometry);
  if (prelude) prelude(device);
  return run_differential(device, golden, program, options.diff);
}

std::optional<ShrinkResult> shrink(const dram::Program& failing,
                                   const FuzzOptions& options,
                                   const Prelude& prelude) {
  ShrinkResult result;
  auto fails = [&](const dram::Program& candidate)
      -> std::optional<Divergence> {
    ++result.candidates_run;
    return run_candidate(candidate, options, prelude);
  };

  auto full = fails(failing);
  if (!full) return std::nullopt;
  result.program = failing;
  result.divergence = std::move(*full);

  // Phase 1: binary-search the shortest failing prefix. The harness reports
  // the first divergence, so a prefix containing the diverging command fails
  // no matter what followed it — the predicate is monotone in the length.
  std::size_t lo = 1, hi = result.program.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    dram::Program prefix(result.program.begin(),
                         result.program.begin() + static_cast<std::ptrdiff_t>(mid));
    if (auto d = fails(prefix)) {
      result.program = std::move(prefix);
      result.divergence = std::move(*d);
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  // Phase 2: greedy removal of interior commands until a fixed point.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = result.program.size(); i-- > 0;) {
      dram::Program candidate = result.program;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (auto d = fails(candidate)) {
        result.program = std::move(candidate);
        result.divergence = std::move(*d);
        changed = true;
      }
    }
  }
  return result;
}

}  // namespace pima::verify
