// Seeded AAP command-stream fuzzer with shrinking.
//
// Generates random — but valid-by-construction — AAP programs: multi-row
// activations only ever address computation rows, AAP copies never alias
// src and dst, payload widths match the geometry, and sizes stay within the
// sub-array. Row choices are biased toward the places bugs live: row 0, the
// last data row, the ShardLayout region boundaries (k-mer/value/temp) from
// the production hash-table mapping, and the computation rows.
//
// A failing program (one on which the production and golden models
// diverge, see differential.hpp) is shrunk to a minimal repro: first a
// binary search for the shortest failing prefix — sound because the
// differential harness reports the *first* divergence, so commands after
// the divergence point never make the failure disappear — then greedy
// removal of the remaining interior commands until a fixed point. A
// Prelude callback re-applies any out-of-band device preparation (e.g. a
// deliberately injected latch flip) before every candidate run so shrinking
// works on fault repros too.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "dram/isa.hpp"
#include "verify/differential.hpp"

namespace pima::verify {

struct FuzzOptions {
  std::uint64_t seed = 1;       ///< generator seed (one program per seed)
  std::size_t ops = 200;        ///< instructions per generated program
  std::size_t subarrays = 2;    ///< distinct sub-arrays a program targets
  dram::Geometry geometry;      ///< sub-array geometry under test
  DifferentialOptions diff;     ///< forwarded to the harness
};

/// Out-of-band device preparation applied before every candidate run
/// (fault injection, pre-loaded rows). The golden device is never touched —
/// an injected fault is exactly what the harness should flag.
using Prelude = std::function<void(dram::Device&)>;

/// Generates one valid-by-construction random program.
dram::Program generate_program(const FuzzOptions& options);

/// Runs one program through the differential harness on fresh devices,
/// applying `prelude` (if any) to the production device first.
std::optional<Divergence> run_candidate(const dram::Program& program,
                                        const FuzzOptions& options,
                                        const Prelude& prelude = nullptr);

/// A shrunk failing program and the divergence it still reproduces.
struct ShrinkResult {
  dram::Program program;     ///< minimal failing command sequence
  Divergence divergence;     ///< divergence of the shrunk program
  std::size_t candidates_run = 0;  ///< differential runs spent shrinking
};

/// Shrinks a failing program (prefix binary search + greedy removal).
/// Returns nullopt if `failing` does not actually fail under `prelude`.
std::optional<ShrinkResult> shrink(const dram::Program& failing,
                                   const FuzzOptions& options,
                                   const Prelude& prelude = nullptr);

}  // namespace pima::verify
