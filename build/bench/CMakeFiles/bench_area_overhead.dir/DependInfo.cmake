
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_area_overhead.cpp" "bench/CMakeFiles/bench_area_overhead.dir/bench_area_overhead.cpp.o" "gcc" "bench/CMakeFiles/bench_area_overhead.dir/bench_area_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pima_core.dir/DependInfo.cmake"
  "/root/repo/build/src/assembly/CMakeFiles/pima_assembly.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/CMakeFiles/pima_platforms.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/pima_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/pima_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/dna/CMakeFiles/pima_dna.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pima_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
