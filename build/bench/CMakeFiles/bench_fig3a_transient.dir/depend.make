# Empty dependencies file for bench_fig3a_transient.
# This may be replaced when dependencies are built.
