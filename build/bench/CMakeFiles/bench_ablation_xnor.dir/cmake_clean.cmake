file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_xnor.dir/bench_ablation_xnor.cpp.o"
  "CMakeFiles/bench_ablation_xnor.dir/bench_ablation_xnor.cpp.o.d"
  "bench_ablation_xnor"
  "bench_ablation_xnor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_xnor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
