# Empty dependencies file for bench_ablation_xnor.
# This may be replaced when dependencies are built.
