# Empty dependencies file for bench_table1_variation.
# This may be replaced when dependencies are built.
