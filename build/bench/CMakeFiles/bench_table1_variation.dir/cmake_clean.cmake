file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_variation.dir/bench_table1_variation.cpp.o"
  "CMakeFiles/bench_table1_variation.dir/bench_table1_variation.cpp.o.d"
  "bench_table1_variation"
  "bench_table1_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
