# Empty dependencies file for bench_simulator_micro.
# This may be replaced when dependencies are built.
