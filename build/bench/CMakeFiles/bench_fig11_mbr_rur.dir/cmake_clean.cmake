file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mbr_rur.dir/bench_fig11_mbr_rur.cpp.o"
  "CMakeFiles/bench_fig11_mbr_rur.dir/bench_fig11_mbr_rur.cpp.o.d"
  "bench_fig11_mbr_rur"
  "bench_fig11_mbr_rur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mbr_rur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
