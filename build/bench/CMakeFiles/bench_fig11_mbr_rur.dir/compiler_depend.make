# Empty compiler generated dependencies file for bench_fig11_mbr_rur.
# This may be replaced when dependencies are built.
