# Empty dependencies file for bench_fig9_exec_power.
# This may be replaced when dependencies are built.
