file(REMOVE_RECURSE
  "CMakeFiles/chr14_scaled.dir/chr14_scaled.cpp.o"
  "CMakeFiles/chr14_scaled.dir/chr14_scaled.cpp.o.d"
  "chr14_scaled"
  "chr14_scaled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chr14_scaled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
