# Empty dependencies file for chr14_scaled.
# This may be replaced when dependencies are built.
