file(REMOVE_RECURSE
  "CMakeFiles/pim_assembly.dir/pim_assembly.cpp.o"
  "CMakeFiles/pim_assembly.dir/pim_assembly.cpp.o.d"
  "pim_assembly"
  "pim_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
