# Empty dependencies file for pim_assembly.
# This may be replaced when dependencies are built.
