# Empty compiler generated dependencies file for bulk_compare.
# This may be replaced when dependencies are built.
