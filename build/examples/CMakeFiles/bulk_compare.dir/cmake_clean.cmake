file(REMOVE_RECURSE
  "CMakeFiles/bulk_compare.dir/bulk_compare.cpp.o"
  "CMakeFiles/bulk_compare.dir/bulk_compare.cpp.o.d"
  "bulk_compare"
  "bulk_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
