file(REMOVE_RECURSE
  "libpima_circuit.a"
)
