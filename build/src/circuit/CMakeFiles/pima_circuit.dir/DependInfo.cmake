
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/area.cpp" "src/circuit/CMakeFiles/pima_circuit.dir/area.cpp.o" "gcc" "src/circuit/CMakeFiles/pima_circuit.dir/area.cpp.o.d"
  "/root/repo/src/circuit/charge_sharing.cpp" "src/circuit/CMakeFiles/pima_circuit.dir/charge_sharing.cpp.o" "gcc" "src/circuit/CMakeFiles/pima_circuit.dir/charge_sharing.cpp.o.d"
  "/root/repo/src/circuit/montecarlo.cpp" "src/circuit/CMakeFiles/pima_circuit.dir/montecarlo.cpp.o" "gcc" "src/circuit/CMakeFiles/pima_circuit.dir/montecarlo.cpp.o.d"
  "/root/repo/src/circuit/sense_amp.cpp" "src/circuit/CMakeFiles/pima_circuit.dir/sense_amp.cpp.o" "gcc" "src/circuit/CMakeFiles/pima_circuit.dir/sense_amp.cpp.o.d"
  "/root/repo/src/circuit/transient.cpp" "src/circuit/CMakeFiles/pima_circuit.dir/transient.cpp.o" "gcc" "src/circuit/CMakeFiles/pima_circuit.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pima_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
