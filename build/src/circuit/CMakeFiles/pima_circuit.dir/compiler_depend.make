# Empty compiler generated dependencies file for pima_circuit.
# This may be replaced when dependencies are built.
