file(REMOVE_RECURSE
  "CMakeFiles/pima_circuit.dir/area.cpp.o"
  "CMakeFiles/pima_circuit.dir/area.cpp.o.d"
  "CMakeFiles/pima_circuit.dir/charge_sharing.cpp.o"
  "CMakeFiles/pima_circuit.dir/charge_sharing.cpp.o.d"
  "CMakeFiles/pima_circuit.dir/montecarlo.cpp.o"
  "CMakeFiles/pima_circuit.dir/montecarlo.cpp.o.d"
  "CMakeFiles/pima_circuit.dir/sense_amp.cpp.o"
  "CMakeFiles/pima_circuit.dir/sense_amp.cpp.o.d"
  "CMakeFiles/pima_circuit.dir/transient.cpp.o"
  "CMakeFiles/pima_circuit.dir/transient.cpp.o.d"
  "libpima_circuit.a"
  "libpima_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pima_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
