file(REMOVE_RECURSE
  "libpima_assembly.a"
)
