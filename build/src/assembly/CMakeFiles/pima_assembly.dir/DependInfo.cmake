
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assembly/assembler.cpp" "src/assembly/CMakeFiles/pima_assembly.dir/assembler.cpp.o" "gcc" "src/assembly/CMakeFiles/pima_assembly.dir/assembler.cpp.o.d"
  "/root/repo/src/assembly/contig.cpp" "src/assembly/CMakeFiles/pima_assembly.dir/contig.cpp.o" "gcc" "src/assembly/CMakeFiles/pima_assembly.dir/contig.cpp.o.d"
  "/root/repo/src/assembly/debruijn.cpp" "src/assembly/CMakeFiles/pima_assembly.dir/debruijn.cpp.o" "gcc" "src/assembly/CMakeFiles/pima_assembly.dir/debruijn.cpp.o.d"
  "/root/repo/src/assembly/euler.cpp" "src/assembly/CMakeFiles/pima_assembly.dir/euler.cpp.o" "gcc" "src/assembly/CMakeFiles/pima_assembly.dir/euler.cpp.o.d"
  "/root/repo/src/assembly/gfa.cpp" "src/assembly/CMakeFiles/pima_assembly.dir/gfa.cpp.o" "gcc" "src/assembly/CMakeFiles/pima_assembly.dir/gfa.cpp.o.d"
  "/root/repo/src/assembly/hash_table.cpp" "src/assembly/CMakeFiles/pima_assembly.dir/hash_table.cpp.o" "gcc" "src/assembly/CMakeFiles/pima_assembly.dir/hash_table.cpp.o.d"
  "/root/repo/src/assembly/scaffold.cpp" "src/assembly/CMakeFiles/pima_assembly.dir/scaffold.cpp.o" "gcc" "src/assembly/CMakeFiles/pima_assembly.dir/scaffold.cpp.o.d"
  "/root/repo/src/assembly/simplify.cpp" "src/assembly/CMakeFiles/pima_assembly.dir/simplify.cpp.o" "gcc" "src/assembly/CMakeFiles/pima_assembly.dir/simplify.cpp.o.d"
  "/root/repo/src/assembly/spectrum.cpp" "src/assembly/CMakeFiles/pima_assembly.dir/spectrum.cpp.o" "gcc" "src/assembly/CMakeFiles/pima_assembly.dir/spectrum.cpp.o.d"
  "/root/repo/src/assembly/verify.cpp" "src/assembly/CMakeFiles/pima_assembly.dir/verify.cpp.o" "gcc" "src/assembly/CMakeFiles/pima_assembly.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pima_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dna/CMakeFiles/pima_dna.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
