file(REMOVE_RECURSE
  "CMakeFiles/pima_assembly.dir/assembler.cpp.o"
  "CMakeFiles/pima_assembly.dir/assembler.cpp.o.d"
  "CMakeFiles/pima_assembly.dir/contig.cpp.o"
  "CMakeFiles/pima_assembly.dir/contig.cpp.o.d"
  "CMakeFiles/pima_assembly.dir/debruijn.cpp.o"
  "CMakeFiles/pima_assembly.dir/debruijn.cpp.o.d"
  "CMakeFiles/pima_assembly.dir/euler.cpp.o"
  "CMakeFiles/pima_assembly.dir/euler.cpp.o.d"
  "CMakeFiles/pima_assembly.dir/gfa.cpp.o"
  "CMakeFiles/pima_assembly.dir/gfa.cpp.o.d"
  "CMakeFiles/pima_assembly.dir/hash_table.cpp.o"
  "CMakeFiles/pima_assembly.dir/hash_table.cpp.o.d"
  "CMakeFiles/pima_assembly.dir/scaffold.cpp.o"
  "CMakeFiles/pima_assembly.dir/scaffold.cpp.o.d"
  "CMakeFiles/pima_assembly.dir/simplify.cpp.o"
  "CMakeFiles/pima_assembly.dir/simplify.cpp.o.d"
  "CMakeFiles/pima_assembly.dir/spectrum.cpp.o"
  "CMakeFiles/pima_assembly.dir/spectrum.cpp.o.d"
  "CMakeFiles/pima_assembly.dir/verify.cpp.o"
  "CMakeFiles/pima_assembly.dir/verify.cpp.o.d"
  "libpima_assembly.a"
  "libpima_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pima_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
