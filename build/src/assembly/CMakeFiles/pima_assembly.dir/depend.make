# Empty dependencies file for pima_assembly.
# This may be replaced when dependencies are built.
