# Empty compiler generated dependencies file for pima_core.
# This may be replaced when dependencies are built.
