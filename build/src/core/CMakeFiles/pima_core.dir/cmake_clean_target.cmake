file(REMOVE_RECURSE
  "libpima_core.a"
)
