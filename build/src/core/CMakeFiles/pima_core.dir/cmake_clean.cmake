file(REMOVE_RECURSE
  "CMakeFiles/pima_core.dir/cost_model.cpp.o"
  "CMakeFiles/pima_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/pima_core.dir/degree.cpp.o"
  "CMakeFiles/pima_core.dir/degree.cpp.o.d"
  "CMakeFiles/pima_core.dir/graph_map.cpp.o"
  "CMakeFiles/pima_core.dir/graph_map.cpp.o.d"
  "CMakeFiles/pima_core.dir/layout.cpp.o"
  "CMakeFiles/pima_core.dir/layout.cpp.o.d"
  "CMakeFiles/pima_core.dir/pd_optimizer.cpp.o"
  "CMakeFiles/pima_core.dir/pd_optimizer.cpp.o.d"
  "CMakeFiles/pima_core.dir/pim_aligner.cpp.o"
  "CMakeFiles/pima_core.dir/pim_aligner.cpp.o.d"
  "CMakeFiles/pima_core.dir/pim_bfs.cpp.o"
  "CMakeFiles/pima_core.dir/pim_bfs.cpp.o.d"
  "CMakeFiles/pima_core.dir/pim_hash_table.cpp.o"
  "CMakeFiles/pima_core.dir/pim_hash_table.cpp.o.d"
  "CMakeFiles/pima_core.dir/pipeline.cpp.o"
  "CMakeFiles/pima_core.dir/pipeline.cpp.o.d"
  "libpima_core.a"
  "libpima_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pima_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
