
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/pima_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/pima_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/degree.cpp" "src/core/CMakeFiles/pima_core.dir/degree.cpp.o" "gcc" "src/core/CMakeFiles/pima_core.dir/degree.cpp.o.d"
  "/root/repo/src/core/graph_map.cpp" "src/core/CMakeFiles/pima_core.dir/graph_map.cpp.o" "gcc" "src/core/CMakeFiles/pima_core.dir/graph_map.cpp.o.d"
  "/root/repo/src/core/layout.cpp" "src/core/CMakeFiles/pima_core.dir/layout.cpp.o" "gcc" "src/core/CMakeFiles/pima_core.dir/layout.cpp.o.d"
  "/root/repo/src/core/pd_optimizer.cpp" "src/core/CMakeFiles/pima_core.dir/pd_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/pima_core.dir/pd_optimizer.cpp.o.d"
  "/root/repo/src/core/pim_aligner.cpp" "src/core/CMakeFiles/pima_core.dir/pim_aligner.cpp.o" "gcc" "src/core/CMakeFiles/pima_core.dir/pim_aligner.cpp.o.d"
  "/root/repo/src/core/pim_bfs.cpp" "src/core/CMakeFiles/pima_core.dir/pim_bfs.cpp.o" "gcc" "src/core/CMakeFiles/pima_core.dir/pim_bfs.cpp.o.d"
  "/root/repo/src/core/pim_hash_table.cpp" "src/core/CMakeFiles/pima_core.dir/pim_hash_table.cpp.o" "gcc" "src/core/CMakeFiles/pima_core.dir/pim_hash_table.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/pima_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/pima_core.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pima_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dna/CMakeFiles/pima_dna.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/pima_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/pima_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/CMakeFiles/pima_platforms.dir/DependInfo.cmake"
  "/root/repo/build/src/assembly/CMakeFiles/pima_assembly.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
