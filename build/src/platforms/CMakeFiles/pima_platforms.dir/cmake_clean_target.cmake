file(REMOVE_RECURSE
  "libpima_platforms.a"
)
