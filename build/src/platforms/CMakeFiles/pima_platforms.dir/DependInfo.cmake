
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platforms/platform.cpp" "src/platforms/CMakeFiles/pima_platforms.dir/platform.cpp.o" "gcc" "src/platforms/CMakeFiles/pima_platforms.dir/platform.cpp.o.d"
  "/root/repo/src/platforms/presets.cpp" "src/platforms/CMakeFiles/pima_platforms.dir/presets.cpp.o" "gcc" "src/platforms/CMakeFiles/pima_platforms.dir/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pima_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/pima_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
