file(REMOVE_RECURSE
  "CMakeFiles/pima_platforms.dir/platform.cpp.o"
  "CMakeFiles/pima_platforms.dir/platform.cpp.o.d"
  "CMakeFiles/pima_platforms.dir/presets.cpp.o"
  "CMakeFiles/pima_platforms.dir/presets.cpp.o.d"
  "libpima_platforms.a"
  "libpima_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pima_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
