# Empty compiler generated dependencies file for pima_platforms.
# This may be replaced when dependencies are built.
