file(REMOVE_RECURSE
  "CMakeFiles/pima_dram.dir/device.cpp.o"
  "CMakeFiles/pima_dram.dir/device.cpp.o.d"
  "CMakeFiles/pima_dram.dir/dpu.cpp.o"
  "CMakeFiles/pima_dram.dir/dpu.cpp.o.d"
  "CMakeFiles/pima_dram.dir/isa.cpp.o"
  "CMakeFiles/pima_dram.dir/isa.cpp.o.d"
  "CMakeFiles/pima_dram.dir/subarray.cpp.o"
  "CMakeFiles/pima_dram.dir/subarray.cpp.o.d"
  "CMakeFiles/pima_dram.dir/trace.cpp.o"
  "CMakeFiles/pima_dram.dir/trace.cpp.o.d"
  "libpima_dram.a"
  "libpima_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pima_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
