
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/device.cpp" "src/dram/CMakeFiles/pima_dram.dir/device.cpp.o" "gcc" "src/dram/CMakeFiles/pima_dram.dir/device.cpp.o.d"
  "/root/repo/src/dram/dpu.cpp" "src/dram/CMakeFiles/pima_dram.dir/dpu.cpp.o" "gcc" "src/dram/CMakeFiles/pima_dram.dir/dpu.cpp.o.d"
  "/root/repo/src/dram/isa.cpp" "src/dram/CMakeFiles/pima_dram.dir/isa.cpp.o" "gcc" "src/dram/CMakeFiles/pima_dram.dir/isa.cpp.o.d"
  "/root/repo/src/dram/subarray.cpp" "src/dram/CMakeFiles/pima_dram.dir/subarray.cpp.o" "gcc" "src/dram/CMakeFiles/pima_dram.dir/subarray.cpp.o.d"
  "/root/repo/src/dram/trace.cpp" "src/dram/CMakeFiles/pima_dram.dir/trace.cpp.o" "gcc" "src/dram/CMakeFiles/pima_dram.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pima_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/pima_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
