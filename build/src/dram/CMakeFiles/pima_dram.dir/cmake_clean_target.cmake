file(REMOVE_RECURSE
  "libpima_dram.a"
)
