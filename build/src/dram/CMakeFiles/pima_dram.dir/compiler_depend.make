# Empty compiler generated dependencies file for pima_dram.
# This may be replaced when dependencies are built.
