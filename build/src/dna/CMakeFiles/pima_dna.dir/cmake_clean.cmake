file(REMOVE_RECURSE
  "CMakeFiles/pima_dna.dir/fasta.cpp.o"
  "CMakeFiles/pima_dna.dir/fasta.cpp.o.d"
  "CMakeFiles/pima_dna.dir/genome.cpp.o"
  "CMakeFiles/pima_dna.dir/genome.cpp.o.d"
  "CMakeFiles/pima_dna.dir/paired.cpp.o"
  "CMakeFiles/pima_dna.dir/paired.cpp.o.d"
  "CMakeFiles/pima_dna.dir/sequence.cpp.o"
  "CMakeFiles/pima_dna.dir/sequence.cpp.o.d"
  "libpima_dna.a"
  "libpima_dna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pima_dna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
