file(REMOVE_RECURSE
  "libpima_dna.a"
)
