# Empty compiler generated dependencies file for pima_dna.
# This may be replaced when dependencies are built.
