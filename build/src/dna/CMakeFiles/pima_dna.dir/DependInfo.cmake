
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dna/fasta.cpp" "src/dna/CMakeFiles/pima_dna.dir/fasta.cpp.o" "gcc" "src/dna/CMakeFiles/pima_dna.dir/fasta.cpp.o.d"
  "/root/repo/src/dna/genome.cpp" "src/dna/CMakeFiles/pima_dna.dir/genome.cpp.o" "gcc" "src/dna/CMakeFiles/pima_dna.dir/genome.cpp.o.d"
  "/root/repo/src/dna/paired.cpp" "src/dna/CMakeFiles/pima_dna.dir/paired.cpp.o" "gcc" "src/dna/CMakeFiles/pima_dna.dir/paired.cpp.o.d"
  "/root/repo/src/dna/sequence.cpp" "src/dna/CMakeFiles/pima_dna.dir/sequence.cpp.o" "gcc" "src/dna/CMakeFiles/pima_dna.dir/sequence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pima_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
