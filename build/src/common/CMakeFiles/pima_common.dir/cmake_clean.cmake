file(REMOVE_RECURSE
  "CMakeFiles/pima_common.dir/bitvector.cpp.o"
  "CMakeFiles/pima_common.dir/bitvector.cpp.o.d"
  "CMakeFiles/pima_common.dir/stats.cpp.o"
  "CMakeFiles/pima_common.dir/stats.cpp.o.d"
  "CMakeFiles/pima_common.dir/table.cpp.o"
  "CMakeFiles/pima_common.dir/table.cpp.o.d"
  "libpima_common.a"
  "libpima_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pima_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
