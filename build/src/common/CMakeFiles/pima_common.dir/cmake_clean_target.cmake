file(REMOVE_RECURSE
  "libpima_common.a"
)
