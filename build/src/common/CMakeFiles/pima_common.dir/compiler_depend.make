# Empty compiler generated dependencies file for pima_common.
# This may be replaced when dependencies are built.
