file(REMOVE_RECURSE
  "CMakeFiles/test_dram.dir/test_device.cpp.o"
  "CMakeFiles/test_dram.dir/test_device.cpp.o.d"
  "CMakeFiles/test_dram.dir/test_dpu.cpp.o"
  "CMakeFiles/test_dram.dir/test_dpu.cpp.o.d"
  "CMakeFiles/test_dram.dir/test_fault_injection.cpp.o"
  "CMakeFiles/test_dram.dir/test_fault_injection.cpp.o.d"
  "CMakeFiles/test_dram.dir/test_isa.cpp.o"
  "CMakeFiles/test_dram.dir/test_isa.cpp.o.d"
  "CMakeFiles/test_dram.dir/test_subarray.cpp.o"
  "CMakeFiles/test_dram.dir/test_subarray.cpp.o.d"
  "CMakeFiles/test_dram.dir/test_trace.cpp.o"
  "CMakeFiles/test_dram.dir/test_trace.cpp.o.d"
  "test_dram"
  "test_dram.pdb"
  "test_dram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
