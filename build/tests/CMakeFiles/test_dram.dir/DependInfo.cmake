
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_device.cpp" "tests/CMakeFiles/test_dram.dir/test_device.cpp.o" "gcc" "tests/CMakeFiles/test_dram.dir/test_device.cpp.o.d"
  "/root/repo/tests/test_dpu.cpp" "tests/CMakeFiles/test_dram.dir/test_dpu.cpp.o" "gcc" "tests/CMakeFiles/test_dram.dir/test_dpu.cpp.o.d"
  "/root/repo/tests/test_fault_injection.cpp" "tests/CMakeFiles/test_dram.dir/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/test_dram.dir/test_fault_injection.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/test_dram.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/test_dram.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_subarray.cpp" "tests/CMakeFiles/test_dram.dir/test_subarray.cpp.o" "gcc" "tests/CMakeFiles/test_dram.dir/test_subarray.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/test_dram.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_dram.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pima_core.dir/DependInfo.cmake"
  "/root/repo/build/src/assembly/CMakeFiles/pima_assembly.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/CMakeFiles/pima_platforms.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/pima_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/pima_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/dna/CMakeFiles/pima_dna.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pima_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
