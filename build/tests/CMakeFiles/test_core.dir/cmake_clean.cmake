file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_cost_model.cpp.o"
  "CMakeFiles/test_core.dir/test_cost_model.cpp.o.d"
  "CMakeFiles/test_core.dir/test_degree.cpp.o"
  "CMakeFiles/test_core.dir/test_degree.cpp.o.d"
  "CMakeFiles/test_core.dir/test_graph_map.cpp.o"
  "CMakeFiles/test_core.dir/test_graph_map.cpp.o.d"
  "CMakeFiles/test_core.dir/test_layout.cpp.o"
  "CMakeFiles/test_core.dir/test_layout.cpp.o.d"
  "CMakeFiles/test_core.dir/test_pim_aligner.cpp.o"
  "CMakeFiles/test_core.dir/test_pim_aligner.cpp.o.d"
  "CMakeFiles/test_core.dir/test_pim_bfs.cpp.o"
  "CMakeFiles/test_core.dir/test_pim_bfs.cpp.o.d"
  "CMakeFiles/test_core.dir/test_pim_hash_table.cpp.o"
  "CMakeFiles/test_core.dir/test_pim_hash_table.cpp.o.d"
  "CMakeFiles/test_core.dir/test_pipeline.cpp.o"
  "CMakeFiles/test_core.dir/test_pipeline.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
