file(REMOVE_RECURSE
  "CMakeFiles/test_assembly.dir/test_assembler.cpp.o"
  "CMakeFiles/test_assembly.dir/test_assembler.cpp.o.d"
  "CMakeFiles/test_assembly.dir/test_contig.cpp.o"
  "CMakeFiles/test_assembly.dir/test_contig.cpp.o.d"
  "CMakeFiles/test_assembly.dir/test_debruijn.cpp.o"
  "CMakeFiles/test_assembly.dir/test_debruijn.cpp.o.d"
  "CMakeFiles/test_assembly.dir/test_euler.cpp.o"
  "CMakeFiles/test_assembly.dir/test_euler.cpp.o.d"
  "CMakeFiles/test_assembly.dir/test_gfa.cpp.o"
  "CMakeFiles/test_assembly.dir/test_gfa.cpp.o.d"
  "CMakeFiles/test_assembly.dir/test_hash_table.cpp.o"
  "CMakeFiles/test_assembly.dir/test_hash_table.cpp.o.d"
  "CMakeFiles/test_assembly.dir/test_kmer.cpp.o"
  "CMakeFiles/test_assembly.dir/test_kmer.cpp.o.d"
  "CMakeFiles/test_assembly.dir/test_scaffold.cpp.o"
  "CMakeFiles/test_assembly.dir/test_scaffold.cpp.o.d"
  "CMakeFiles/test_assembly.dir/test_simplify.cpp.o"
  "CMakeFiles/test_assembly.dir/test_simplify.cpp.o.d"
  "CMakeFiles/test_assembly.dir/test_spectrum.cpp.o"
  "CMakeFiles/test_assembly.dir/test_spectrum.cpp.o.d"
  "CMakeFiles/test_assembly.dir/test_verify.cpp.o"
  "CMakeFiles/test_assembly.dir/test_verify.cpp.o.d"
  "test_assembly"
  "test_assembly.pdb"
  "test_assembly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
