
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_assembler.cpp" "tests/CMakeFiles/test_assembly.dir/test_assembler.cpp.o" "gcc" "tests/CMakeFiles/test_assembly.dir/test_assembler.cpp.o.d"
  "/root/repo/tests/test_contig.cpp" "tests/CMakeFiles/test_assembly.dir/test_contig.cpp.o" "gcc" "tests/CMakeFiles/test_assembly.dir/test_contig.cpp.o.d"
  "/root/repo/tests/test_debruijn.cpp" "tests/CMakeFiles/test_assembly.dir/test_debruijn.cpp.o" "gcc" "tests/CMakeFiles/test_assembly.dir/test_debruijn.cpp.o.d"
  "/root/repo/tests/test_euler.cpp" "tests/CMakeFiles/test_assembly.dir/test_euler.cpp.o" "gcc" "tests/CMakeFiles/test_assembly.dir/test_euler.cpp.o.d"
  "/root/repo/tests/test_gfa.cpp" "tests/CMakeFiles/test_assembly.dir/test_gfa.cpp.o" "gcc" "tests/CMakeFiles/test_assembly.dir/test_gfa.cpp.o.d"
  "/root/repo/tests/test_hash_table.cpp" "tests/CMakeFiles/test_assembly.dir/test_hash_table.cpp.o" "gcc" "tests/CMakeFiles/test_assembly.dir/test_hash_table.cpp.o.d"
  "/root/repo/tests/test_kmer.cpp" "tests/CMakeFiles/test_assembly.dir/test_kmer.cpp.o" "gcc" "tests/CMakeFiles/test_assembly.dir/test_kmer.cpp.o.d"
  "/root/repo/tests/test_scaffold.cpp" "tests/CMakeFiles/test_assembly.dir/test_scaffold.cpp.o" "gcc" "tests/CMakeFiles/test_assembly.dir/test_scaffold.cpp.o.d"
  "/root/repo/tests/test_simplify.cpp" "tests/CMakeFiles/test_assembly.dir/test_simplify.cpp.o" "gcc" "tests/CMakeFiles/test_assembly.dir/test_simplify.cpp.o.d"
  "/root/repo/tests/test_spectrum.cpp" "tests/CMakeFiles/test_assembly.dir/test_spectrum.cpp.o" "gcc" "tests/CMakeFiles/test_assembly.dir/test_spectrum.cpp.o.d"
  "/root/repo/tests/test_verify.cpp" "tests/CMakeFiles/test_assembly.dir/test_verify.cpp.o" "gcc" "tests/CMakeFiles/test_assembly.dir/test_verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pima_core.dir/DependInfo.cmake"
  "/root/repo/build/src/assembly/CMakeFiles/pima_assembly.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/CMakeFiles/pima_platforms.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/pima_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/pima_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/dna/CMakeFiles/pima_dna.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pima_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
