file(REMOVE_RECURSE
  "CMakeFiles/test_circuit.dir/test_area.cpp.o"
  "CMakeFiles/test_circuit.dir/test_area.cpp.o.d"
  "CMakeFiles/test_circuit.dir/test_charge_sharing.cpp.o"
  "CMakeFiles/test_circuit.dir/test_charge_sharing.cpp.o.d"
  "CMakeFiles/test_circuit.dir/test_montecarlo.cpp.o"
  "CMakeFiles/test_circuit.dir/test_montecarlo.cpp.o.d"
  "CMakeFiles/test_circuit.dir/test_sense_amp.cpp.o"
  "CMakeFiles/test_circuit.dir/test_sense_amp.cpp.o.d"
  "CMakeFiles/test_circuit.dir/test_transient.cpp.o"
  "CMakeFiles/test_circuit.dir/test_transient.cpp.o.d"
  "test_circuit"
  "test_circuit.pdb"
  "test_circuit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
