file(REMOVE_RECURSE
  "CMakeFiles/test_dna.dir/test_base_sequence.cpp.o"
  "CMakeFiles/test_dna.dir/test_base_sequence.cpp.o.d"
  "CMakeFiles/test_dna.dir/test_fasta.cpp.o"
  "CMakeFiles/test_dna.dir/test_fasta.cpp.o.d"
  "CMakeFiles/test_dna.dir/test_genome.cpp.o"
  "CMakeFiles/test_dna.dir/test_genome.cpp.o.d"
  "CMakeFiles/test_dna.dir/test_paired.cpp.o"
  "CMakeFiles/test_dna.dir/test_paired.cpp.o.d"
  "test_dna"
  "test_dna.pdb"
  "test_dna[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
