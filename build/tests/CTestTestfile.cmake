# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_dna[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_platforms[1]_include.cmake")
include("/root/repo/build/tests/test_assembly[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
add_test([=[cli_project]=] "/root/repo/build/tools/pima_asm" "project" "--k" "16")
set_tests_properties([=[cli_project]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[cli_pipeline]=] "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/pima_asm" "-DWORK=/root/repo/build/tests/cli_work" "-P" "/root/repo/tests/cli_pipeline_test.cmake")
set_tests_properties([=[cli_pipeline]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;35;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[example_pim_assembly]=] "/root/repo/build/examples/pim_assembly")
set_tests_properties([=[example_pim_assembly]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;36;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[example_bulk_compare]=] "/root/repo/build/examples/bulk_compare")
set_tests_properties([=[example_bulk_compare]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")
