file(REMOVE_RECURSE
  "CMakeFiles/pima_asm.dir/pima_asm.cpp.o"
  "CMakeFiles/pima_asm.dir/pima_asm.cpp.o.d"
  "pima_asm"
  "pima_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pima_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
