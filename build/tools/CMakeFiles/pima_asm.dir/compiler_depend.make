# Empty compiler generated dependencies file for pima_asm.
# This may be replaced when dependencies are built.
