// pima_devd — one device shard of a process-isolated assembly run.
//
// Spawned by runtime::ProcSupervisor with the request socket on an
// inherited fd (`--fd N --device D`). The process is a thin I/O loop
// around core::ShardWorkerCore: read one NDJSON request line, dispatch,
// write one response line. A side thread emits `{"hb":1}` heartbeats so
// the parent's liveness deadline stays armed while a long kernel runs.
//
// Exit protocol (the supervisor classifies on these):
//   0   clean — shutdown handshake, or orphaned (EOF on the socket)
//   6   the engine watchdog fired (EngineStalledError; reported first)
//   86  fsio crash-point (torn-write chaos), taken by the fault shim
//   else exit_code_for() of whatever escaped main
//
// PIMA_DEVD_TEST_HOOK drives the kill-and-recover battery:
//   dev=<D>:after=<N>:action=<sigkill|segv|exit86|torn>[:flag=<path>]
// After handling N requests on device D the action fires — once, when a
// flag path is given (the file is created before crashing, so a restarted
// worker survives the same environment).
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/fsio.hpp"
#include "core/shard_worker.hpp"
#include "net/json.hpp"
#include "net/socket.hpp"
#include "telemetry/session.hpp"

namespace {

using pima::net::Json;
using pima::net::LineChannel;

struct TestHook {
  bool armed = false;
  std::size_t device = 0;
  std::size_t after = 0;
  std::string action;
  std::string flag;  ///< fire-once marker file; empty = fire every life
};

TestHook parse_test_hook(const char* spec) {
  TestHook hook;
  if (spec == nullptr || *spec == '\0') return hook;
  std::string s(spec);
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t colon = s.find(':', pos);
    const std::string field =
        s.substr(pos, colon == std::string::npos ? colon : colon - pos);
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos)
      throw pima::InputFormatError("PIMA_DEVD_TEST_HOOK: bad field '" + field +
                                   "'");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "dev")
      hook.device = static_cast<std::size_t>(std::stoull(value));
    else if (key == "after")
      hook.after = static_cast<std::size_t>(std::stoull(value));
    else if (key == "action")
      hook.action = value;
    else if (key == "flag")
      hook.flag = value;
    else
      throw pima::InputFormatError("PIMA_DEVD_TEST_HOOK: unknown key '" + key +
                                   "'");
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  if (hook.action != "sigkill" && hook.action != "segv" &&
      hook.action != "exit86" && hook.action != "torn")
    throw pima::InputFormatError("PIMA_DEVD_TEST_HOOK: unknown action '" +
                                 hook.action + "'");
  hook.armed = true;
  return hook;
}

/// Fires the configured crash action. Creating the flag file first makes
/// the hook one-shot across restarts: the respawned worker sees the file
/// and stays healthy.
[[noreturn]] void fire_test_hook(const TestHook& hook, int fd) {
  if (!hook.flag.empty()) {
    const int flag_fd =
        ::open(hook.flag.c_str(), O_CREAT | O_WRONLY | O_CLOEXEC, 0644);
    if (flag_fd >= 0) ::close(flag_fd);
  }
  if (hook.action == "sigkill") {
    ::raise(SIGKILL);
  } else if (hook.action == "segv") {
    ::raise(SIGSEGV);
  } else if (hook.action == "exit86") {
    ::_exit(86);
  } else {  // torn: half a response line, no newline, then a "clean" exit
    const char torn[] = "{\"ok\":tr";
    (void)!::write(fd, torn, sizeof(torn) - 1);
    ::_exit(0);
  }
  ::_exit(86);  // unreachable; raise() of a fatal signal does not return
}

bool hook_already_fired(const TestHook& hook) {
  if (hook.flag.empty()) return false;
  return ::access(hook.flag.c_str(), F_OK) == 0;
}

/// Serializes response + heartbeat writers onto the socket so lines never
/// interleave mid-frame.
class SharedWriter {
 public:
  explicit SharedWriter(LineChannel& channel) : channel_(channel) {}

  void write(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    channel_.write_line(line);
  }

 private:
  LineChannel& channel_;
  std::mutex mutex_;
};

int run(int fd, std::size_t device_arg) {
#ifdef __linux__
  // Die with the supervisor: an abandoned worker must not outlive the run.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  ::signal(SIGPIPE, SIG_IGN);
  pima::fsio::load_env_plan();
  TestHook hook = parse_test_hook(std::getenv("PIMA_DEVD_TEST_HOOK"));
  if (hook.armed && (hook.device != device_arg || hook_already_fired(hook)))
    hook.armed = false;

  LineChannel channel(fd);
  SharedWriter writer(channel);

  std::atomic<bool> stop_heartbeat{false};
  std::thread heartbeat([&] {
    const std::string beat = "{\"hb\":1}";
    while (!stop_heartbeat.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      if (stop_heartbeat.load(std::memory_order_relaxed)) break;
      try {
        writer.write(beat);
      } catch (...) {
        // Parent gone: nothing left to serve. Skip destructors — the
        // request loop may hold the engine mid-kernel.
        ::_exit(0);
      }
    }
  });
  // The loop below never returns without stopping the thread first; on the
  // typed-error exit paths _exit skips the join deliberately.
  struct HeartbeatGuard {
    std::atomic<bool>& stop;
    std::thread& thread;
    ~HeartbeatGuard() {
      stop.store(true, std::memory_order_relaxed);
      if (thread.joinable()) thread.join();
    }
  } guard{stop_heartbeat, heartbeat};

  std::unique_ptr<pima::core::ShardWorkerCore> core;
  std::size_t handled = 0;
  std::string line;
  while (channel.read_line(line)) {
    Json request;
    try {
      request = Json::parse(line);
    } catch (const std::exception& e) {
      writer.write(
          pima::core::worker_error_response(
              pima::InputFormatError(std::string("unparseable request: ") +
                                     e.what()))
              .dump());
      continue;
    }
    Json response;
    bool stalled = false;
    try {
      if (!core) {
        if (request.get_string("op") != "init")
          throw pima::InputFormatError(
              "device worker: first request must be init");
        // Span tracing must be live BEFORE the engine exists: enable()
        // clears track names, and the engine names its channel/watchdog
        // tracks from its constructor. A modest per-thread ring keeps the
        // telemetry-verb response line far below the channel's frame cap.
        if (request.get_bool("trace_spans", false)) {
          pima::telemetry::Tracer& tr = pima::telemetry::tracer();
          tr.enable(1 << 14);
          tr.set_thread_track(0);
          tr.set_track_name(0, "rpc loop");
        }
        core = std::make_unique<pima::core::ShardWorkerCore>(request);
        response = Json::object();
        response.set("ok", true);
        // Clock-sync sample: the supervisor brackets this request with its
        // own timestamps and shifts this incarnation's spans accordingly.
        if (pima::telemetry::tracer().enabled())
          response.set("now_ns", pima::telemetry::tracer().now_ns());
      } else {
        response = core->handle(request);
      }
    } catch (const pima::EngineStalledError& e) {
      response = pima::core::worker_error_response(e);
      stalled = true;
    } catch (const std::exception& e) {
      response = pima::core::worker_error_response(e);
    }
    ++handled;
    if (hook.armed && handled >= hook.after) fire_test_hook(hook, fd);
    writer.write(response.dump());
    if (stalled) {
      // The engine is poisoned past a stall; report, then die with the
      // documented code so the supervisor's classification is typed.
      ::_exit(pima::kExitEngineStalled);
    }
    if (core && core->shutdown_requested()) return 0;
  }
  // EOF without a shutdown handshake: the parent vanished (or tore the
  // stream). Exit 0 — the supervisor classifies mid-run EOF as kTorn from
  // its own side; an orphan after shutdown is simply clean.
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int fd = -1;
  long long device = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fd" && i + 1 < argc) {
      fd = std::atoi(argv[++i]);
    } else if (arg == "--device" && i + 1 < argc) {
      device = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: pima_devd --fd <fd> --device <index>\n"
                   "(internal worker of `pima_asm pim-run --isolate`; not "
                   "meant to be run by hand)\n");
      return pima::kExitUsage;
    }
  }
  if (fd < 0 || device < 0) {
    std::fprintf(stderr, "pima_devd: --fd and --device are required\n");
    return pima::kExitUsage;
  }
  try {
    return run(fd, static_cast<std::size_t>(device));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pima_devd[%lld]: %s\n", device, e.what());
    return pima::exit_code_for(e);
  }
}
