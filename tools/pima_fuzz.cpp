// pima_fuzz — AAP command-stream fuzzer against the golden model.
//
//   pima_fuzz [--seeds N] [--ops N] [--seed S] [--subarrays N]
//   pima_fuzz --replay trace.aap
//   pima_fuzz --inject-latch-flip [--ops N] [--seed S]
//
// Default mode generates one valid-by-construction random AAP program per
// seed (seeds S..S+N-1) and runs each through the differential harness:
// the production dram::Device and the naive golden model execute the same
// commands and every touched row, the carry latch and all read/reduce
// results are diffed. Any divergence is shrunk to a minimal repro and
// printed in replayable ISA text; the exit code is the number of diverging
// seeds (0 = models agree).
//
// --replay runs a captured program (`pima_asm pim-run --dump-trace`)
// through the same harness instead of generating one.
//
// --inject-latch-flip is the self-test: it flips one carry-latch bit in the
// production device only, demonstrates that the harness reports the
// resulting divergence, and that the shrinker reduces the random program
// around it to a minimal repro. Exits 0 iff the flip was caught and the
// repro is minimal.
//
// --service fuzzes the daemon's NDJSON request parser instead of the DRAM
// models: it starts an in-process daemon on a throwaway state dir, fires a
// seeded corpus of malformed/mutated request lines at it, and asserts the
// protocol invariant — every non-empty request line gets exactly one
// parseable JSON response line (or a clean hangup), and the daemon still
// answers ping afterwards. Exit code = number of violated inputs.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "dna/sequence.hpp"
#include "dram/isa.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "verify/fuzz.hpp"

namespace {

using namespace pima;

[[noreturn]] void fail(const std::string& msg) {
  std::fprintf(stderr, "pima_fuzz: %s\n", msg.c_str());
  std::exit(2);
}

void usage() {
  std::puts(
      "usage: pima_fuzz [--seeds N] [--ops N] [--seed S] [--subarrays N]\n"
      "       pima_fuzz --replay trace.aap [--rows N] [--columns N]\n"
      "       pima_fuzz --inject-latch-flip [--ops N] [--seed S]\n"
      "       pima_fuzz --service [--seeds N] [--seed S]\n"
      "       pima_fuzz --devices N [--seeds N] [--seed S]\n"
      "--devices runs full pipelines sharded over N simulated devices\n"
      "(random reads per seed), checks the capture is bit-identical to a\n"
      "1-device run, and replays every device's command sub-stream through\n"
      "the golden model; exits with the number of diverging devices.\n"
      "--service fuzzes the daemon's NDJSON request parser (in-process\n"
      "daemon on a temp dir); exits with the number of protocol-invariant\n"
      "violations (every request line -> one parseable response, daemon\n"
      "stays healthy).\n"
      "--rows/--columns must match the geometry the trace was captured\n"
      "under (pima_asm pim-run --rows/--columns); a mismatch is reported\n"
      "as a rejection divergence, not silently accepted.");
}

void print_divergence(const verify::Divergence& d) {
  std::printf("DIVERGENCE: %s\n", d.report().c_str());
}

void print_repro(const verify::ShrinkResult& shrunk) {
  std::printf("shrunk to %zu command(s) in %zu candidate run(s):\n",
              shrunk.program.size(), shrunk.candidates_run);
  std::fputs(dram::to_text(shrunk.program).c_str(), stdout);
  print_divergence(shrunk.divergence);
}

int run_replay(const std::string& path, verify::FuzzOptions opts) {
  std::ifstream in(path);
  if (!in) fail("cannot read trace: " + path);
  const dram::Program program = dram::parse_program(in);
  std::printf("replaying %zu command(s) from %s\n", program.size(),
              path.c_str());
  // A captured trace already executed once on the production device, so
  // every command must execute here too: symmetric rejection means the
  // replay geometry (--rows/--columns) does not match the capture.
  opts.diff.accept_symmetric_rejection = false;
  if (auto d = verify::run_candidate(program, opts)) {
    print_divergence(*d);
    if (auto shrunk = verify::shrink(program, opts)) print_repro(*shrunk);
    return 1;
  }
  std::puts("replay OK: production and golden models agree");
  return 0;
}

int run_inject_demo(verify::FuzzOptions opts) {
  dram::Program program = verify::generate_program(opts);
  // A TRA or latch reset early in the random stream would overwrite the
  // flipped latch in both models before anything reads it — the flip would
  // be genuinely unobservable. Front a sum cycle that consumes the latch so
  // the corruption always propagates into a row (which is also what makes
  // the shrunk repro interesting: one command suffices).
  dram::Instruction observe;
  observe.op = dram::Opcode::kSum;
  observe.subarray = 0;
  observe.src1 = opts.geometry.data_rows();
  observe.src2 = opts.geometry.data_rows() + 1;
  observe.dst = 0;
  program.insert(program.begin(), observe);
  const verify::Prelude flip = [](dram::Device& device) {
    device.subarray(std::size_t{0}).inject_latch_flip(0);
  };
  const auto d = verify::run_candidate(program, opts, flip);
  if (!d) {
    std::puts("FAIL: injected latch flip was not detected");
    return 1;
  }
  std::printf("injected latch flip detected over %zu command(s)\n",
              program.size());
  print_divergence(*d);
  const auto shrunk = verify::shrink(program, opts, flip);
  if (!shrunk) {
    std::puts("FAIL: shrinker lost the failure");
    return 1;
  }
  print_repro(*shrunk);
  if (shrunk->program.size() > 10) {
    std::puts("FAIL: repro not minimal (> 10 commands)");
    return 1;
  }
  std::puts("inject-latch-flip self-test OK");
  return 0;
}

// ---- service protocol fuzzing ---------------------------------------------

/// Seed corpus for the daemon's NDJSON parser: valid requests, truncations,
/// wrong-typed fields, unknown verbs, duplicate keys, non-UTF8 bytes, junk.
std::vector<std::string> service_corpus() {
  return {
      R"({"verb":"ping"})",
      R"({"verb":"list"})",
      R"({"verb":"metrics","format":"json"})",
      R"({"verb":"metrics","format":"yaml"})",
      R"({"verb":"status","job":"j0001"})",
      R"({"verb":"result","job":"nope","fetch":true})",
      R"({"verb":"cancel","job":""})",
      R"({"verb":"submit","reads":"/no/such.fa","k":17})",
      R"({"verb":"submit","reads":"/no/such.fa","k":-3})",
      R"({"verb":"submit","reads":"","k":17})",
      R"({"verb":"submit","reads":"/r.fa","k":"seventeen"})",
      R"({"verb":"submit","reads":"/r.fa","idempotency_key":"bad key!"})",
      // Multi-device and process-isolation job fields: in-range, zero,
      // over the clamp, and wrong-typed devices; every isolation spelling
      // the validator must accept or reject with one typed error line.
      R"({"verb":"submit","reads":"/no/such.fa","devices":4})",
      R"({"verb":"submit","reads":"/r.fa","devices":0})",
      R"({"verb":"submit","reads":"/r.fa","devices":65})",
      R"({"verb":"submit","reads":"/r.fa","devices":"four"})",
      R"({"verb":"submit","reads":"/no/such.fa","devices":2,"isolation":"process"})",
      R"({"verb":"submit","reads":"/no/such.fa","isolation":"none"})",
      R"({"verb":"submit","reads":"/r.fa","isolation":"container"})",
      R"({"verb":"submit","reads":"/r.fa","isolation":42})",
      R"({"verb":"submit","reads":"/r.fa","isolation":null})",
      R"({"verb":"submit","reads":"/r.fa","devices":4,"isolation":"PROCESS"})",
      // Truncated / structurally broken JSON.
      R"({"verb":"ping")",
      R"({"verb":)",
      R"({)",
      R"(])",
      R"("just a string")",
      R"(42)",
      R"(null)",
      R"({"verb":"ping"}trailing)",
      // Missing / wrong-typed verb.
      R"({})",
      R"({"verb":42})",
      R"({"verb":null})",
      R"({"verb":["ping"]})",
      R"({"job":"j0001"})",
      // Unknown verbs.
      R"({"verb":"frobnicate"})",
      R"({"verb":""})",
      R"({"verb":"PING"})",
      // Duplicate keys (last-wins vs reject — either way: one response).
      R"({"verb":"ping","verb":"list"})",
      R"({"verb":"status","job":"a","job":"b"})",
      // Non-UTF8 bytes inside and outside strings.
      std::string("{\"verb\":\"\x80\x81\xfe\"}"),
      std::string("{\"verb\":\"ping\"\xff}"),
      // Deep nesting and a long-but-bounded string.
      R"({"verb":"status","job":{"a":{"b":{"c":[[[[1]]]]}}}})",
      "{\"verb\":\"status\",\"job\":\"" + std::string(100'000, 'x') + "\"}",
  };
}

/// Deterministic byte-level mutation. Newlines are masked to spaces so a
/// mutant stays one protocol line.
std::string mutate_line(std::string s, std::mt19937_64& rng) {
  if (s.empty()) s = "{}";
  const auto pick = [&](std::size_t n) { return std::size_t(rng() % n); };
  switch (pick(4)) {
    case 0:  // flip a byte
      s[pick(s.size())] = static_cast<char>(rng() & 0xff);
      break;
    case 1:  // truncate
      s.resize(pick(s.size()) + 1);
      break;
    case 2: {  // duplicate a slice into a random spot
      const std::size_t a = pick(s.size()), b = pick(s.size());
      const auto slice = s.substr(std::min(a, b), std::max(a, b) - std::min(a, b) + 1);
      s.insert(pick(s.size()), slice);
      break;
    }
    default: {  // splice random bytes (often non-UTF8)
      std::string junk;
      for (std::size_t i = 0, n = pick(8) + 1; i < n; ++i)
        junk += static_cast<char>(rng() & 0xff);
      s.insert(pick(s.size()), junk);
      break;
    }
  }
  for (char& c : s)
    if (c == '\n' || c == '\r' || c == '\0') c = ' ';
  return s;
}

int run_service_fuzz(std::size_t seeds, std::uint64_t seed) {
  char dir_template[] = "/tmp/pima_fuzz_svc_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) fail("mkdtemp failed");
  const std::string state_dir = dir_template;

  service::DaemonOptions opt;
  opt.state_dir = state_dir;
  opt.socket_path = state_dir + "/fuzz.sock";
  opt.admission.max_jobs = 1;
  opt.admission.queue_depth = 4096;  // junk submits may legitimately queue
  opt.admission.channel_budget = 4;
  opt.geometry.rows = 512;
  opt.geometry.columns = 256;
  opt.geometry.subarrays_per_mat = 16;
  opt.geometry.mats_per_bank = 4;
  opt.geometry.banks = 2;
  service::Daemon daemon(opt);
  std::thread server([&] { daemon.run(); });

  const auto ping_ok = [&]() -> bool {
    try {
      auto c = service::Client::connect_unix_socket(opt.socket_path, 10.0);
      return c.request(service::Json::parse(R"({"verb":"ping"})"))
          .get_bool("ok", false);
    } catch (const std::exception&) {
      return false;
    }
  };
  for (int i = 0; i < 100 && !ping_ok(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const auto corpus = service_corpus();
  std::mt19937_64 rng{seed};
  int violations = 0;
  for (std::size_t s = 0; s < seeds; ++s) {
    std::string input = corpus[s % corpus.size()];
    if (s >= corpus.size()) input = mutate_line(input, rng);
    // A mutant that spells a shutdown verb would stop the daemon mid-run;
    // those paths have their own tests.
    if (input.find("drain") != std::string::npos ||
        input.find("shutdown") != std::string::npos)
      continue;
    bool ok = true;
    try {
      service::ScopedFd fd =
          service::connect_unix(opt.socket_path, 10.0);
      service::LineChannel channel(fd.get());
      channel.set_deadline(10.0);
      channel.write_line(input);
      std::string line;
      if (channel.read_line(line)) {
        service::Json response = service::Json::parse(line);  // must parse
        if (response.type() != service::Json::Type::kObject) ok = false;
      }
      // EOF without a response = clean hangup; acceptable for abuse lines.
    } catch (const std::exception& e) {
      std::printf("input %zu: transport error: %s\n", s, e.what());
      ok = false;
    }
    if (ok && !ping_ok()) {
      std::printf("input %zu: daemon unhealthy afterwards\n", s);
      ok = false;
    }
    if (!ok) {
      ++violations;
      std::printf("VIOLATION on input %zu: %.120s\n", s, input.c_str());
    }
  }

  daemon.request_shutdown();
  server.join();
  std::error_code ec;
  std::filesystem::remove_all(state_dir, ec);
  if (violations == 0)
    std::printf("service fuzz: %zu input(s), protocol invariant held\n",
                seeds);
  return violations;
}

// ---- sharded end-to-end differential ---------------------------------------

/// Deterministic random reads: a fresh genome per seed, tiled with
/// overlapping fixed-length windows (uniform ~4x coverage).
std::vector<dna::Sequence> synth_reads(std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  constexpr std::size_t kGenome = 400, kRead = 60, kStep = 15;
  std::string genome;
  genome.reserve(kGenome);
  const char bases[] = "ACGT";
  for (std::size_t i = 0; i < kGenome; ++i) genome += bases[rng() % 4];
  std::vector<dna::Sequence> reads;
  for (std::size_t pos = 0; pos + kRead <= genome.size(); pos += kStep)
    reads.push_back(dna::Sequence::from_string(
        std::string_view(genome).substr(pos, kRead)));
  return reads;
}

/// End-to-end sharded differential: run the full pipeline sharded over
/// `devices` simulated devices with trace capture on, then (a) check the
/// merged capture is bit-identical to a single-device run of the same
/// reads, and (b) replay each device's per-shard command sub-stream
/// through the golden model. Exit code = number of diverging devices.
int run_sharded_fuzz(std::size_t devices, std::size_t seeds,
                     verify::FuzzOptions opts) {
  dram::Geometry geom;  // pima_asm pim-run default geometry
  geom.rows = 512;
  geom.columns = 256;
  geom.subarrays_per_mat = 16;
  geom.mats_per_bank = 4;
  geom.banks = 2;
  opts.geometry = geom;
  // Captured traces already executed once on the production pool — every
  // command must execute in the replay too.
  opts.diff.accept_symmetric_rejection = false;

  int diverging = 0;
  for (std::size_t s = 0; s < seeds; ++s) {
    const std::uint64_t seed = opts.seed + s;
    const auto reads = synth_reads(seed);

    core::PipelineOptions popt;
    popt.k = 17;
    popt.hash_shards = 16;
    popt.threads = 1;
    popt.capture_trace = true;

    popt.devices = devices;
    dram::Device sharded_dev(geom);
    const auto sharded = core::run_pipeline(sharded_dev, reads, popt);

    popt.devices = 1;
    dram::Device single_dev(geom);
    const auto single = core::run_pipeline(single_dev, reads, popt);

    if (sharded.trace != single.trace ||
        sharded.contigs != single.contigs) {
      std::printf(
          "seed %llu: DIVERGENCE: %zu-device run differs from 1-device "
          "(trace %zu vs %zu commands, %zu vs %zu contigs)\n",
          static_cast<unsigned long long>(seed), devices,
          sharded.trace.size(), single.trace.size(),
          sharded.contigs.size(), single.contigs.size());
      ++diverging;
      continue;
    }

    // Per-device golden replay: owner d's sub-stream keeps per-sub-array
    // order (owners partition the flat space), so each is a standalone
    // replayable program.
    std::size_t bad_devices = 0;
    for (std::size_t d = 0; d < devices; ++d) {
      dram::Program part;
      for (const auto& inst : sharded.trace)
        if (inst.subarray % devices == d) part.push_back(inst);
      if (auto div = verify::run_candidate(part, opts)) {
        std::printf("seed %llu device %zu (%zu commands): ",
                    static_cast<unsigned long long>(seed), d, part.size());
        print_divergence(*div);
        ++bad_devices;
      }
    }
    diverging += static_cast<int>(bad_devices);
    if (bad_devices == 0)
      std::printf("seed %llu: OK (%zu devices, %zu captured commands)\n",
                  static_cast<unsigned long long>(seed), devices,
                  sharded.trace.size());
  }
  if (diverging == 0)
    std::printf(
        "all %zu seed(s): sharded capture matches 1-device and the golden "
        "model\n",
        seeds);
  return diverging;
}

int run_fuzz(std::size_t seeds, const verify::FuzzOptions& base) {
  int diverging = 0;
  for (std::size_t i = 0; i < seeds; ++i) {
    verify::FuzzOptions opts = base;
    opts.seed = base.seed + i;
    const dram::Program program = verify::generate_program(opts);
    if (auto d = verify::run_candidate(program, opts)) {
      ++diverging;
      std::printf("seed %llu: ", static_cast<unsigned long long>(opts.seed));
      print_divergence(*d);
      if (auto shrunk = verify::shrink(program, opts)) print_repro(*shrunk);
    } else {
      std::printf("seed %llu: OK (%zu commands)\n",
                  static_cast<unsigned long long>(opts.seed), program.size());
    }
  }
  if (diverging == 0)
    std::printf("all %zu seed(s) agree with the golden model\n", seeds);
  return diverging;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t seeds = 8;
  verify::FuzzOptions opts;
  opts.ops = 500;
  std::optional<std::string> replay;
  bool inject = false;
  bool service = false;
  std::size_t devices = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) fail("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--seeds")
      seeds = std::stoull(value());
    else if (arg == "--ops")
      opts.ops = std::stoull(value());
    else if (arg == "--seed")
      opts.seed = std::stoull(value());
    else if (arg == "--subarrays")
      opts.subarrays = std::stoull(value());
    else if (arg == "--rows")
      opts.geometry.rows = std::stoull(value());
    else if (arg == "--columns")
      opts.geometry.columns = std::stoull(value());
    else if (arg == "--replay")
      replay = value();
    else if (arg == "--inject-latch-flip")
      inject = true;
    else if (arg == "--service")
      service = true;
    else if (arg == "--devices") {
      devices = std::stoull(value());
      if (devices < 1 || devices > 64) fail("--devices must be in [1, 64]");
    }
    else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      fail("unknown flag: " + arg);
    }
  }

  try {
    if (replay) return run_replay(*replay, opts);
    if (inject) return run_inject_demo(opts);
    if (service) return run_service_fuzz(seeds, opts.seed);
    if (devices > 0) return run_sharded_fuzz(devices, seeds, opts);
    return run_fuzz(seeds, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pima_fuzz: %s\n", e.what());
    return 2;
  }
}
