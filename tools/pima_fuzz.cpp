// pima_fuzz — AAP command-stream fuzzer against the golden model.
//
//   pima_fuzz [--seeds N] [--ops N] [--seed S] [--subarrays N]
//   pima_fuzz --replay trace.aap
//   pima_fuzz --inject-latch-flip [--ops N] [--seed S]
//
// Default mode generates one valid-by-construction random AAP program per
// seed (seeds S..S+N-1) and runs each through the differential harness:
// the production dram::Device and the naive golden model execute the same
// commands and every touched row, the carry latch and all read/reduce
// results are diffed. Any divergence is shrunk to a minimal repro and
// printed in replayable ISA text; the exit code is the number of diverging
// seeds (0 = models agree).
//
// --replay runs a captured program (`pima_asm pim-run --dump-trace`)
// through the same harness instead of generating one.
//
// --inject-latch-flip is the self-test: it flips one carry-latch bit in the
// production device only, demonstrates that the harness reports the
// resulting divergence, and that the shrinker reduces the random program
// around it to a minimal repro. Exits 0 iff the flip was caught and the
// repro is minimal.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "dram/isa.hpp"
#include "verify/fuzz.hpp"

namespace {

using namespace pima;

[[noreturn]] void fail(const std::string& msg) {
  std::fprintf(stderr, "pima_fuzz: %s\n", msg.c_str());
  std::exit(2);
}

void usage() {
  std::puts(
      "usage: pima_fuzz [--seeds N] [--ops N] [--seed S] [--subarrays N]\n"
      "       pima_fuzz --replay trace.aap [--rows N] [--columns N]\n"
      "       pima_fuzz --inject-latch-flip [--ops N] [--seed S]\n"
      "--rows/--columns must match the geometry the trace was captured\n"
      "under (pima_asm pim-run --rows/--columns); a mismatch is reported\n"
      "as a rejection divergence, not silently accepted.");
}

void print_divergence(const verify::Divergence& d) {
  std::printf("DIVERGENCE: %s\n", d.report().c_str());
}

void print_repro(const verify::ShrinkResult& shrunk) {
  std::printf("shrunk to %zu command(s) in %zu candidate run(s):\n",
              shrunk.program.size(), shrunk.candidates_run);
  std::fputs(dram::to_text(shrunk.program).c_str(), stdout);
  print_divergence(shrunk.divergence);
}

int run_replay(const std::string& path, verify::FuzzOptions opts) {
  std::ifstream in(path);
  if (!in) fail("cannot read trace: " + path);
  const dram::Program program = dram::parse_program(in);
  std::printf("replaying %zu command(s) from %s\n", program.size(),
              path.c_str());
  // A captured trace already executed once on the production device, so
  // every command must execute here too: symmetric rejection means the
  // replay geometry (--rows/--columns) does not match the capture.
  opts.diff.accept_symmetric_rejection = false;
  if (auto d = verify::run_candidate(program, opts)) {
    print_divergence(*d);
    if (auto shrunk = verify::shrink(program, opts)) print_repro(*shrunk);
    return 1;
  }
  std::puts("replay OK: production and golden models agree");
  return 0;
}

int run_inject_demo(verify::FuzzOptions opts) {
  dram::Program program = verify::generate_program(opts);
  // A TRA or latch reset early in the random stream would overwrite the
  // flipped latch in both models before anything reads it — the flip would
  // be genuinely unobservable. Front a sum cycle that consumes the latch so
  // the corruption always propagates into a row (which is also what makes
  // the shrunk repro interesting: one command suffices).
  dram::Instruction observe;
  observe.op = dram::Opcode::kSum;
  observe.subarray = 0;
  observe.src1 = opts.geometry.data_rows();
  observe.src2 = opts.geometry.data_rows() + 1;
  observe.dst = 0;
  program.insert(program.begin(), observe);
  const verify::Prelude flip = [](dram::Device& device) {
    device.subarray(std::size_t{0}).inject_latch_flip(0);
  };
  const auto d = verify::run_candidate(program, opts, flip);
  if (!d) {
    std::puts("FAIL: injected latch flip was not detected");
    return 1;
  }
  std::printf("injected latch flip detected over %zu command(s)\n",
              program.size());
  print_divergence(*d);
  const auto shrunk = verify::shrink(program, opts, flip);
  if (!shrunk) {
    std::puts("FAIL: shrinker lost the failure");
    return 1;
  }
  print_repro(*shrunk);
  if (shrunk->program.size() > 10) {
    std::puts("FAIL: repro not minimal (> 10 commands)");
    return 1;
  }
  std::puts("inject-latch-flip self-test OK");
  return 0;
}

int run_fuzz(std::size_t seeds, const verify::FuzzOptions& base) {
  int diverging = 0;
  for (std::size_t i = 0; i < seeds; ++i) {
    verify::FuzzOptions opts = base;
    opts.seed = base.seed + i;
    const dram::Program program = verify::generate_program(opts);
    if (auto d = verify::run_candidate(program, opts)) {
      ++diverging;
      std::printf("seed %llu: ", static_cast<unsigned long long>(opts.seed));
      print_divergence(*d);
      if (auto shrunk = verify::shrink(program, opts)) print_repro(*shrunk);
    } else {
      std::printf("seed %llu: OK (%zu commands)\n",
                  static_cast<unsigned long long>(opts.seed), program.size());
    }
  }
  if (diverging == 0)
    std::printf("all %zu seed(s) agree with the golden model\n", seeds);
  return diverging;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t seeds = 8;
  verify::FuzzOptions opts;
  opts.ops = 500;
  std::optional<std::string> replay;
  bool inject = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) fail("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--seeds")
      seeds = std::stoull(value());
    else if (arg == "--ops")
      opts.ops = std::stoull(value());
    else if (arg == "--seed")
      opts.seed = std::stoull(value());
    else if (arg == "--subarrays")
      opts.subarrays = std::stoull(value());
    else if (arg == "--rows")
      opts.geometry.rows = std::stoull(value());
    else if (arg == "--columns")
      opts.geometry.columns = std::stoull(value());
    else if (arg == "--replay")
      replay = value();
    else if (arg == "--inject-latch-flip")
      inject = true;
    else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      fail("unknown flag: " + arg);
    }
  }

  try {
    if (replay) return run_replay(*replay, opts);
    if (inject) return run_inject_demo(opts);
    return run_fuzz(seeds, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pima_fuzz: %s\n", e.what());
    return 2;
  }
}
