// pima_asm — command-line front end of the PIM-Assembler library.
//
//   pima_asm generate  --length 50000 --coverage 20 --genome g.fa --reads r.fa
//   pima_asm assemble  --reads r.fa --k 21 --out contigs.fa [--reference g.fa]
//   pima_asm pim-run   --reads r.fa --k 17 --shards 16 [--threads N]
//                      [--reference g.fa]
//   pima_asm project   [--k 16]
//
// `generate` writes a synthetic chromosome and a sampled read set as FASTA;
// `assemble` runs the software pipeline (with optional error cleaning);
// `pim-run` executes the bit-accurate PIM simulation and reports per-stage
// command/energy statistics; `project` prints the full-scale chr14 cost
// estimates for every platform.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"

#include "assembly/assembler.hpp"
#include "assembly/gfa.hpp"
#include "assembly/spectrum.hpp"
#include "assembly/verify.hpp"
#include "common/table.hpp"
#include "core/cost_model.hpp"
#include "core/pipeline.hpp"
#include "dna/fasta.hpp"
#include "dram/isa.hpp"
#include "dna/genome.hpp"
#include "platforms/presets.hpp"
#include "runtime/recovery.hpp"
#include "telemetry/session.hpp"

namespace {

using namespace pima;

// Minimal --key value parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) fail("expected --flag, got: " + key);
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "1";  // boolean flag
      }
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) fail("missing required --" + key);
    return *v;
  }
  std::size_t get_size(const std::string& key, std::size_t fallback) const {
    const auto v = get(key);
    return v ? static_cast<std::size_t>(std::stoull(*v)) : fallback;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto v = get(key);
    return v ? std::stod(*v) : fallback;
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

  [[noreturn]] static void fail(const std::string& msg) {
    std::fprintf(stderr, "pima_asm: %s\n", msg.c_str());
    std::exit(2);
  }

 private:
  std::map<std::string, std::string> values_;
};

std::vector<dna::Sequence> load_reads(const std::string& path) {
  const auto records = dna::read_fasta_file(path);
  std::vector<dna::Sequence> reads;
  reads.reserve(records.size());
  for (const auto& r : records) reads.push_back(r.seq);
  return reads;
}

void report_verification(const std::string& reference_path,
                         const std::vector<dna::Sequence>& contigs,
                         std::size_t min_len) {
  const auto ref = dna::read_fasta_file(reference_path);
  if (ref.empty()) Args::fail("empty reference: " + reference_path);
  const auto report =
      assembly::verify_contigs(ref.front().seq, contigs, min_len);
  std::printf("verify: %zu/%zu contigs match, %.1f%% reference coverage\n",
              report.contigs_matching, report.contigs_checked,
              100.0 * report.reference_coverage);
}

int cmd_generate(const Args& args) {
  dna::GenomeParams gp;
  gp.length = args.get_size("length", 50'000);
  gp.gc_content = args.get_double("gc", 0.42);
  gp.repeat_count = args.get_size("repeats", 10);
  gp.repeat_length = args.get_size("repeat-length", 300);
  gp.seed = args.get_size("seed", 14);
  const auto genome = dna::generate_genome(gp);

  dna::ReadSamplerParams rp;
  rp.read_length = args.get_size("read-length", 101);
  rp.coverage = args.get_double("coverage", 20.0);
  rp.error_rate = args.get_double("errors", 0.0);
  rp.seed = gp.seed + 1;
  const auto reads = dna::sample_reads(genome, rp);

  dna::write_fasta_file(args.require("genome"), {{"synthetic_chromosome",
                                                  genome}});
  std::vector<dna::Record> read_records;
  read_records.reserve(reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i)
    read_records.push_back({"read_" + std::to_string(i), reads[i]});
  dna::write_fasta_file(args.require("reads"), read_records);
  std::printf("wrote %zu bp genome and %zu reads (%.0fx)\n", genome.size(),
              reads.size(), rp.coverage);
  return 0;
}

int cmd_assemble(const Args& args) {
  const auto reads = load_reads(args.require("reads"));
  assembly::AssemblyOptions opt;
  opt.k = args.get_size("k", 21);
  opt.min_kmer_freq =
      static_cast<std::uint32_t>(args.get_size("min-freq", 1));
  opt.euler_contigs = args.has("euler");
  opt.use_multiplicity = args.has("multiplicity") || args.has("simplify");
  opt.simplify = args.has("simplify");
  const auto result = assembly::assemble(reads, opt);

  std::printf("reads: %zu   distinct %zu-mers: %zu\n", reads.size(), opt.k,
              result.distinct_kmers);
  std::printf("graph: %zu nodes / %zu edges", result.graph_nodes,
              result.graph_edges);
  if (opt.simplify)
    std::printf("  (cleaned: %zu low-cov, %zu tip edges, %zu bubbles)",
                result.simplify_stats.low_coverage_removed,
                result.simplify_stats.tips_removed,
                result.simplify_stats.bubbles_popped);
  std::printf("\ncontigs: %zu, N50 %zu bp, longest %zu bp, total %zu bp\n",
              result.stats.count, result.stats.n50, result.stats.longest,
              result.stats.total_length);

  if (const auto out = args.get("out")) {
    std::vector<dna::Record> records;
    for (std::size_t i = 0; i < result.contigs.size(); ++i)
      records.push_back({"contig_" + std::to_string(i), result.contigs[i]});
    dna::write_fasta_file(*out, records);
    std::printf("wrote %zu contigs to %s\n", records.size(), out->c_str());
  }
  if (const auto gfa_path = args.get("gfa")) {
    const auto counter = assembly::build_hashmap(reads, opt.k);
    const auto graph =
        assembly::DeBruijnGraph::from_counter(counter, true);
    std::ofstream gfa_out(*gfa_path);
    if (!gfa_out) Args::fail("cannot open " + *gfa_path);
    assembly::write_gfa(gfa_out, assembly::build_gfa(graph));
    std::printf("wrote assembly graph to %s\n", gfa_path->c_str());
  }
  if (const auto ref = args.get("reference"))
    report_verification(*ref, result.contigs, 2 * opt.k);
  return 0;
}

int cmd_pim_run(const Args& args) {
  const auto reads = load_reads(args.require("reads"));
  dram::Geometry geom;
  geom.rows = args.get_size("rows", 512);
  geom.columns = 256;
  geom.subarrays_per_mat = 16;
  geom.mats_per_bank = 4;
  geom.banks = 2;
  dram::Device device(geom);

  core::PipelineOptions opt;
  opt.k = args.get_size("k", 17);
  opt.hash_shards = args.get_size("shards", 16);
  opt.euler_contigs = args.has("euler");
  // 0 = resolve to hardware concurrency inside the runtime engine.
  opt.threads = args.get_size("threads", 0);

  // Fault-aware execution flags. --fault-variation is the ±% process
  // variation from paper Table I (0.10 = ±10%); injection stays off at 0.
  opt.fault.variation = args.get_double("fault-variation", 0.0);
  opt.fault.seed =
      static_cast<std::uint64_t>(args.get_size("fault-seed", 2020));
  opt.fault.retention_flip_per_op =
      args.get_double("fault-retention", 0.0);
  opt.fault.weak_row_fraction = args.get_double("fault-weak-rows", 0.0);
  if (const auto mode = args.get("recovery")) {
    const auto parsed = runtime::parse_recovery_mode(*mode);
    if (!parsed)
      Args::fail("unknown --recovery mode '" + *mode +
                 "' (expected off, retry or vote)");
    opt.recovery.mode = *parsed;
  }
  opt.recovery.max_retries =
      args.get_size("max-retries", opt.recovery.max_retries);
  opt.recovery.subarray_failure_budget = args.get_size(
      "failure-budget", opt.recovery.subarray_failure_budget);
  // Oracle capture: record every DRAM command and dump the replayable AAP
  // program (feed it to `pima_fuzz --replay` for golden-model checking).
  const auto dump_trace = args.get("dump-trace");
  opt.capture_trace = dump_trace.has_value();

  // Run resilience: stage-boundary snapshots, resume, engine watchdog.
  if (const auto dir = args.get("checkpoint-dir")) {
    opt.checkpoint_dir = *dir;
    std::error_code ec;
    std::filesystem::create_directories(*dir, ec);
    if (ec)
      throw IoError("cannot create checkpoint directory " + *dir + ": " +
                    ec.message());
  }
  opt.resume = args.has("resume");
  if (opt.resume && opt.checkpoint_dir.empty())
    Args::fail("--resume requires --checkpoint-dir");
  opt.stall_timeout_ms = args.get_double("stall-timeout", 0.0);
  if (opt.resume &&
      !std::filesystem::exists(opt.checkpoint_dir + "/pipeline.ckpt"))
    std::printf("resume: no checkpoint in %s, starting fresh\n",
                opt.checkpoint_dir.c_str());

  // Telemetry sinks: --trace-json writes a Chrome trace-event file
  // (Perfetto / chrome://tracing), --metrics-out a Prometheus text file
  // plus a JSON snapshot at <path>.json, --progress[=seconds] a periodic
  // status line on stderr.
  auto& session = telemetry::TelemetrySession::instance();
  const auto trace_json = args.get("trace-json");
  const auto metrics_out = args.get("metrics-out");
  if (trace_json) {
    session.set_trace_path(*trace_json);
    session.tracer().enable();
  }
  if (metrics_out) session.set_metrics_path(*metrics_out);
  if (metrics_out || args.has("progress")) session.enable_metrics();
  if (args.has("progress"))
    // Bare --progress parses as "1" → the default 1 s interval.
    opt.progress_interval_s = args.get_double("progress", 1.0);

  const bool fault_aware =
      opt.fault.enabled() || opt.recovery.mode != runtime::RecoveryMode::kOff;
  if (fault_aware)
    // Echo every stochastic input so a run can be reproduced from its log.
    std::printf(
        "fault model: variation=±%.0f%%  seed=%llu  retention=%g  "
        "weak-rows=%g  recovery=%s\n",
        100.0 * opt.fault.variation,
        static_cast<unsigned long long>(opt.fault.seed),
        opt.fault.retention_flip_per_op, opt.fault.weak_row_fraction,
        runtime::to_string(opt.recovery.mode));

  const auto result = [&] {
    try {
      return core::run_pipeline(device, reads, opt);
    } catch (...) {
      // Flush whatever telemetry the run recorded before the error (the
      // engine watchdog already flushed on a stall; this covers the rest).
      if (trace_json || metrics_out) {
        session.tracer().disable();
        try {
          session.flush();
        } catch (...) {
        }
      }
      throw;
    }
  }();

  TextTable table("PIM-Assembler simulated execution");
  table.set_header({"stage", "commands", "time (us)", "energy (nJ)",
                    "sub-arrays"});
  for (const auto* stage :
       {&result.hashmap, &result.debruijn, &result.traverse})
    table.add_row({stage->name, std::to_string(stage->device.commands),
                   TextTable::num(stage->device.time_ns / 1e3, 4),
                   TextTable::num(stage->device.energy_pj / 1e3, 4),
                   std::to_string(stage->device.subarrays_used)});
  std::fputs(table.render().c_str(), stdout);
  if (fault_aware) {
    const auto& fs = result.fault_stats;
    TextTable ft("fault-aware execution report");
    ft.set_header({"injected", "detected", "retried", "remapped",
                   "host-fallback", "escaped"});
    ft.add_row({std::to_string(fs.injected), std::to_string(fs.detected),
                std::to_string(fs.retried), std::to_string(fs.remapped),
                std::to_string(fs.host_fallbacks),
                std::to_string(fs.escaped)});
    std::fputs(ft.render().c_str(), stdout);
    if (fs.degraded_subarrays > 0)
      std::printf(
          "degraded: %zu sub-array(s) over the failure budget fell back "
          "to host recompute\n",
          fs.degraded_subarrays);
  }
  std::printf("contigs: %zu, N50 %zu bp\n", result.contig_stats.count,
              result.contig_stats.n50);
  if (dump_trace) {
    const auto program = dram::captured_program(device);
    std::ofstream out(*dump_trace);
    if (!out) Args::fail("cannot write trace: " + *dump_trace);
    out << dram::to_text(program);
    std::printf("trace: %zu commands -> %s\n", program.size(),
                dump_trace->c_str());
  }
  if (trace_json || metrics_out) {
    session.tracer().disable();
    session.flush();
    if (trace_json)
      std::printf("telemetry: %zu trace events -> %s (open in Perfetto)\n",
                  session.tracer().event_count(), trace_json->c_str());
    if (metrics_out)
      std::printf("telemetry: metrics -> %s (+ %s.json)\n",
                  metrics_out->c_str(), metrics_out->c_str());
  }
  if (const auto ref = args.get("reference"))
    report_verification(*ref, result.contigs, 2 * opt.k);
  return 0;
}

int cmd_spectrum(const Args& args) {
  const auto reads = load_reads(args.require("reads"));
  const std::size_t k = args.get_size("k", 21);
  const auto spec = assembly::compute_spectrum(
      assembly::build_hashmap(reads, k),
      static_cast<std::uint32_t>(args.get_size("max-freq", 64)));
  const auto a = assembly::analyze_spectrum(spec);
  std::printf("k=%zu  distinct=%llu  total=%llu\n", k,
              static_cast<unsigned long long>(spec.distinct_kmers),
              static_cast<unsigned long long>(spec.total_kmers));
  std::printf(
      "error cutoff: %u   coverage peak: %u   genome size ~%.0f bp   "
      "error k-mers: %.1f%%\n",
      a.error_cutoff, a.coverage_peak, a.genome_size_estimate,
      100.0 * a.error_kmer_fraction);
  TextTable table("k-mer frequency histogram");
  table.set_header({"freq", "distinct k-mers"});
  for (std::uint32_t f = 1; f < spec.histogram.size(); ++f)
    if (spec.histogram[f] > 0)
      table.add_row({std::to_string(f), std::to_string(spec.histogram[f])});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_project(const Args& args) {
  core::WorkloadParams w;
  w.k = args.get_size("k", 16);
  TextTable table("chr14 full-scale projection (paper Fig. 9 configuration)");
  table.set_header({"platform", "hashmap (s)", "deBruijn (s)",
                    "traverse (s)", "total (s)", "power (W)"});
  for (const auto& p : platforms::application_platforms()) {
    const auto cost = core::estimate_application(p, w);
    table.add_row({p.name, TextTable::num(cost.hashmap.time_s, 4),
                   TextTable::num(cost.debruijn.time_s, 4),
                   TextTable::num(cost.traverse.time_s, 4),
                   TextTable::num(cost.total_time_s, 4),
                   TextTable::num(cost.avg_power_w, 4)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

void usage() {
  std::puts(
      "usage: pima_asm <command> [--flags]\n"
      "  generate --genome <out.fa> --reads <out.fa> [--length N]\n"
      "           [--coverage C] [--read-length L] [--errors RATE]\n"
      "           [--repeats N] [--gc F] [--seed N]\n"
      "  assemble --reads <in.fa> [--k K] [--min-freq N] [--simplify]\n"
      "           [--euler] [--out contigs.fa] [--reference genome.fa]\n"
      "  pim-run  --reads <in.fa> [--k K] [--shards N] [--euler]\n"
      "           [--threads N (default: hardware concurrency)]\n"
      "           [--reference genome.fa]\n"
      "           [--fault-variation F (e.g. 0.10 = ±10% Table I)]\n"
      "           [--fault-seed N] [--fault-retention P]\n"
      "           [--fault-weak-rows F] [--recovery off|retry|vote]\n"
      "           [--max-retries N] [--failure-budget N]\n"
      "           [--dump-trace trace.aap (replay: pima_fuzz --replay)]\n"
      "           [--checkpoint-dir DIR (snapshot after each stage)]\n"
      "           [--resume (skip stages covered by DIR/pipeline.ckpt)]\n"
      "           [--stall-timeout MS (watchdog per-task deadline; 0=off)]\n"
      "           [--trace-json out.json (Chrome trace for Perfetto)]\n"
      "           [--metrics-out out.prom (Prometheus text + .json)]\n"
      "           [--progress [SECONDS] (periodic stderr status; default 1)]\n"
      "  spectrum --reads <in.fa> [--k K] [--max-freq N]\n"
      "  project  [--k K]");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "assemble") return cmd_assemble(args);
    if (cmd == "pim-run") return cmd_pim_run(args);
    if (cmd == "spectrum") return cmd_spectrum(args);
    if (cmd == "project") return cmd_project(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pima_asm: %s\n", e.what());
    // Documented exit codes (see DESIGN.md §10): 3 = malformed input,
    // 4 = I/O failure, 5 = corrupt/incompatible checkpoint, 6 = engine
    // stall, 1 = anything else.
    return pima::exit_code_for(e);
  }
  usage();
  return 2;
}
