// pima_asm — command-line front end of the PIM-Assembler library.
//
//   pima_asm generate  --length 50000 --coverage 20 --genome g.fa --reads r.fa
//   pima_asm assemble  --reads r.fa --k 21 --out contigs.fa [--reference g.fa]
//   pima_asm pim-run   --reads r.fa --k 17 --shards 16 [--threads N]
//                      [--reference g.fa]
//   pima_asm project   [--k 16]
//
// `generate` writes a synthetic chromosome and a sampled read set as FASTA;
// `assemble` runs the software pipeline (with optional error cleaning);
// `pim-run` executes the bit-accurate PIM simulation and reports per-stage
// command/energy statistics; `project` prints the full-scale chr14 cost
// estimates for every platform.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fsio.hpp"

#include "assembly/assembler.hpp"
#include "assembly/gfa.hpp"
#include "assembly/spectrum.hpp"
#include "assembly/verify.hpp"
#include "common/table.hpp"
#include "core/cost_model.hpp"
#include "core/pipeline.hpp"
#include "dna/fasta.hpp"
#include "dram/isa.hpp"
#include "dna/genome.hpp"
#include "platforms/presets.hpp"
#include "runtime/cancel.hpp"
#include "runtime/recovery.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/log.hpp"
#include "telemetry/session.hpp"

namespace {

using namespace pima;

// Minimal --key value parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) fail("expected --flag, got: " + key);
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "1";  // boolean flag
      }
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) fail("missing required --" + key);
    return *v;
  }
  std::size_t get_size(const std::string& key, std::size_t fallback) const {
    const auto v = get(key);
    return v ? static_cast<std::size_t>(std::stoull(*v)) : fallback;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto v = get(key);
    return v ? std::stod(*v) : fallback;
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

  [[noreturn]] static void fail(const std::string& msg) {
    std::fprintf(stderr, "pima_asm: %s\n", msg.c_str());
    std::exit(2);
  }

 private:
  std::map<std::string, std::string> values_;
};

// Typed flag validation: unlike Args::get_size (stoull, which silently
// wraps "-1" to 2^64-1), these parse strictly and reject out-of-range or
// non-numeric values with InputFormatError → the documented "malformed
// input" exit code, naming the flag and the accepted range.
std::size_t get_bounded_size(const Args& args, const std::string& key,
                             std::size_t fallback, std::size_t min,
                             std::size_t max) {
  const auto v = args.get(key);
  if (!v) return fallback;
  long long n = 0;
  std::size_t pos = 0;
  try {
    n = std::stoll(*v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != v->size() || n < 0 || static_cast<unsigned long long>(n) < min ||
      static_cast<unsigned long long>(n) > max)
    throw InputFormatError("--" + key + " must be an integer in [" +
                           std::to_string(min) + ", " + std::to_string(max) +
                           "], got '" + *v + "'");
  return static_cast<std::size_t>(n);
}

double get_bounded_double(const Args& args, const std::string& key,
                          double fallback, double min, double max) {
  const auto v = args.get(key);
  if (!v) return fallback;
  double n = 0.0;
  std::size_t pos = 0;
  try {
    n = std::stod(*v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != v->size() || !std::isfinite(n) || n < min || n > max)
    throw InputFormatError("--" + key + " must be a number in [" +
                           std::to_string(min) + ", " + std::to_string(max) +
                           "], got '" + *v + "'");
  return n;
}

// SIGINT/SIGTERM turn into a cooperative cancel (pim-run) or a graceful
// daemon shutdown (serve). Both request paths are async-signal-safe.
runtime::CancelToken g_run_cancel;
std::atomic<service::Daemon*> g_daemon{nullptr};

extern "C" void handle_termination_signal(int) {
  g_run_cancel.request("interrupted by signal");
  if (service::Daemon* d = g_daemon.load(std::memory_order_acquire))
    d->request_shutdown();
}

void install_termination_handlers() {
  std::signal(SIGINT, handle_termination_signal);
  std::signal(SIGTERM, handle_termination_signal);
}

std::vector<dna::Sequence> load_reads(const std::string& path) {
  const auto records = dna::read_fasta_file(path);
  std::vector<dna::Sequence> reads;
  reads.reserve(records.size());
  for (const auto& r : records) reads.push_back(r.seq);
  return reads;
}

void report_verification(const std::string& reference_path,
                         const std::vector<dna::Sequence>& contigs,
                         std::size_t min_len) {
  const auto ref = dna::read_fasta_file(reference_path);
  if (ref.empty()) Args::fail("empty reference: " + reference_path);
  const auto report =
      assembly::verify_contigs(ref.front().seq, contigs, min_len);
  std::printf("verify: %zu/%zu contigs match, %.1f%% reference coverage\n",
              report.contigs_matching, report.contigs_checked,
              100.0 * report.reference_coverage);
}

int cmd_generate(const Args& args) {
  dna::GenomeParams gp;
  gp.length = args.get_size("length", 50'000);
  gp.gc_content = args.get_double("gc", 0.42);
  gp.repeat_count = args.get_size("repeats", 10);
  gp.repeat_length = args.get_size("repeat-length", 300);
  gp.seed = args.get_size("seed", 14);
  const auto genome = dna::generate_genome(gp);

  dna::ReadSamplerParams rp;
  rp.read_length = args.get_size("read-length", 101);
  rp.coverage = args.get_double("coverage", 20.0);
  rp.error_rate = args.get_double("errors", 0.0);
  rp.seed = gp.seed + 1;
  const auto reads = dna::sample_reads(genome, rp);

  dna::write_fasta_file(args.require("genome"), {{"synthetic_chromosome",
                                                  genome}});
  std::vector<dna::Record> read_records;
  read_records.reserve(reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i)
    read_records.push_back({"read_" + std::to_string(i), reads[i]});
  dna::write_fasta_file(args.require("reads"), read_records);
  std::printf("wrote %zu bp genome and %zu reads (%.0fx)\n", genome.size(),
              reads.size(), rp.coverage);
  return 0;
}

int cmd_assemble(const Args& args) {
  const auto reads = load_reads(args.require("reads"));
  assembly::AssemblyOptions opt;
  opt.k = args.get_size("k", 21);
  opt.min_kmer_freq =
      static_cast<std::uint32_t>(args.get_size("min-freq", 1));
  opt.euler_contigs = args.has("euler");
  opt.use_multiplicity = args.has("multiplicity") || args.has("simplify");
  opt.simplify = args.has("simplify");
  const auto result = assembly::assemble(reads, opt);

  std::printf("reads: %zu   distinct %zu-mers: %zu\n", reads.size(), opt.k,
              result.distinct_kmers);
  std::printf("graph: %zu nodes / %zu edges", result.graph_nodes,
              result.graph_edges);
  if (opt.simplify)
    std::printf("  (cleaned: %zu low-cov, %zu tip edges, %zu bubbles)",
                result.simplify_stats.low_coverage_removed,
                result.simplify_stats.tips_removed,
                result.simplify_stats.bubbles_popped);
  std::printf("\ncontigs: %zu, N50 %zu bp, longest %zu bp, total %zu bp\n",
              result.stats.count, result.stats.n50, result.stats.longest,
              result.stats.total_length);

  if (const auto out = args.get("out")) {
    std::vector<dna::Record> records;
    for (std::size_t i = 0; i < result.contigs.size(); ++i)
      records.push_back({"contig_" + std::to_string(i), result.contigs[i]});
    dna::write_fasta_file(*out, records);
    std::printf("wrote %zu contigs to %s\n", records.size(), out->c_str());
  }
  if (const auto gfa_path = args.get("gfa")) {
    const auto counter = assembly::build_hashmap(reads, opt.k);
    const auto graph =
        assembly::DeBruijnGraph::from_counter(counter, true);
    std::ofstream gfa_out(*gfa_path);
    if (!gfa_out) Args::fail("cannot open " + *gfa_path);
    assembly::write_gfa(gfa_out, assembly::build_gfa(graph));
    std::printf("wrote assembly graph to %s\n", gfa_path->c_str());
  }
  if (const auto ref = args.get("reference"))
    report_verification(*ref, result.contigs, 2 * opt.k);
  return 0;
}

int cmd_pim_run(const Args& args) {
  const auto reads = load_reads(args.require("reads"));
  dram::Geometry geom;
  geom.rows = args.get_size("rows", 512);
  geom.columns = 256;
  geom.subarrays_per_mat = 16;
  geom.mats_per_bank = 4;
  geom.banks = 2;
  dram::Device device(geom);

  core::PipelineOptions opt;
  opt.k = args.get_size("k", 17);
  opt.hash_shards = args.get_size("shards", 16);
  opt.euler_contigs = args.has("euler");
  // 0 = resolve to hardware concurrency inside the runtime engine.
  opt.threads = get_bounded_size(args, "threads", 0, 0, 1024);
  // Simulated devices the run shards over (owner = flat % N). Contigs,
  // stats and model metrics are bit-identical for every value; the device
  // count is pinned in the checkpoint fingerprint, so --resume must match.
  opt.devices = get_bounded_size(args, "devices", 1, 1, 64);
  // Process isolation: each device shard in its own pima_devd worker under
  // the crash-containing supervisor (DESIGN.md §15). Outputs stay
  // bit-identical, even when workers are killed mid-stage and restarted.
  opt.isolate = args.has("isolate");
  opt.isolate_opts.restart_budget =
      get_bounded_size(args, "restart-budget", 3, 0, 1000);
  if (const auto devd = args.get("devd-path"))
    opt.isolate_opts.devd_path = *devd;

  // Fault-aware execution flags. --fault-variation is the ±% process
  // variation from paper Table I (0.10 = ±10%); injection stays off at 0.
  opt.fault.variation = args.get_double("fault-variation", 0.0);
  opt.fault.seed =
      static_cast<std::uint64_t>(args.get_size("fault-seed", 2020));
  opt.fault.retention_flip_per_op =
      args.get_double("fault-retention", 0.0);
  opt.fault.weak_row_fraction = args.get_double("fault-weak-rows", 0.0);
  if (const auto mode = args.get("recovery")) {
    const auto parsed = runtime::parse_recovery_mode(*mode);
    if (!parsed)
      Args::fail("unknown --recovery mode '" + *mode +
                 "' (expected off, retry or vote)");
    opt.recovery.mode = *parsed;
  }
  opt.recovery.max_retries =
      args.get_size("max-retries", opt.recovery.max_retries);
  opt.recovery.subarray_failure_budget = args.get_size(
      "failure-budget", opt.recovery.subarray_failure_budget);
  // Oracle capture: record every DRAM command and dump the replayable AAP
  // program (feed it to `pima_fuzz --replay` for golden-model checking).
  const auto dump_trace = args.get("dump-trace");
  opt.capture_trace = dump_trace.has_value();

  // Run resilience: stage-boundary snapshots, resume, engine watchdog.
  if (const auto dir = args.get("checkpoint-dir")) {
    opt.checkpoint_dir = *dir;
    std::error_code ec;
    std::filesystem::create_directories(*dir, ec);
    if (ec)
      throw IoError("cannot create checkpoint directory " + *dir + ": " +
                    ec.message());
  }
  opt.resume = args.has("resume");
  if (opt.resume && opt.checkpoint_dir.empty())
    Args::fail("--resume requires --checkpoint-dir");
  opt.stall_timeout_ms =
      get_bounded_double(args, "stall-timeout", 0.0, 0.0, 86'400'000.0);
  if (opt.resume &&
      !std::filesystem::exists(opt.checkpoint_dir + "/pipeline.ckpt"))
    std::printf("resume: no checkpoint in %s, starting fresh\n",
                opt.checkpoint_dir.c_str());

  // Telemetry sinks: --trace-json writes a Chrome trace-event file
  // (Perfetto / chrome://tracing), --metrics-out a Prometheus text file
  // plus a JSON snapshot at <path>.json, --progress[=seconds] a periodic
  // status line on stderr.
  auto& session = telemetry::TelemetrySession::instance();
  // Structured event log (--log-json mirrors every diagnostic as NDJSON;
  // stderr keeps the human rendering either way) and the flight recorder:
  // always armed, report lands next to the checkpoints when a directory
  // is given, else ./crash_report.json.
  if (const auto log_json = args.get("log-json"))
    telemetry::Logger::instance().set_json_path(*log_json);
  auto& flight = telemetry::FlightRecorder::instance();
  if (!opt.checkpoint_dir.empty())
    flight.set_output_path(opt.checkpoint_dir + "/crash_report.json");
  flight.install_fatal_signal_handlers();
  const auto trace_json = args.get("trace-json");
  const auto metrics_out = args.get("metrics-out");
  if (trace_json) {
    session.set_trace_path(*trace_json);
    session.tracer().enable();
  }
  if (metrics_out) session.set_metrics_path(*metrics_out);
  if (metrics_out || args.has("progress")) session.enable_metrics();
  if (args.has("progress"))
    // Bare --progress parses as "1" → the default 1 s interval.
    opt.progress_interval_s = args.get_double("progress", 1.0);

  const bool fault_aware =
      opt.fault.enabled() || opt.recovery.mode != runtime::RecoveryMode::kOff;
  if (fault_aware)
    // Echo every stochastic input so a run can be reproduced from its log.
    std::printf(
        "fault model: variation=±%.0f%%  seed=%llu  retention=%g  "
        "weak-rows=%g  recovery=%s\n",
        100.0 * opt.fault.variation,
        static_cast<unsigned long long>(opt.fault.seed),
        opt.fault.retention_flip_per_op, opt.fault.weak_row_fraction,
        runtime::to_string(opt.recovery.mode));

  // Ctrl-C / SIGTERM cancels cooperatively: the pipeline raises
  // CancelledError at its next safe point, telemetry flushes below, and
  // completed stage checkpoints stay valid for --resume.
  install_termination_handlers();
  opt.cancel = &g_run_cancel;

  const auto result = [&] {
    try {
      return core::run_pipeline(device, reads, opt);
    } catch (const CancelledError&) {
      if (trace_json || metrics_out) {
        session.tracer().disable();
        try {
          session.flush();
        } catch (...) {
        }
      }
      if (!opt.checkpoint_dir.empty()) {
        // Partial-run marker: records that this directory holds an
        // interrupted (not failed) run. Removed by a later clean finish.
        std::ofstream marker(opt.checkpoint_dir + "/partial.run");
        marker << "interrupted by signal; resume with --resume\n";
        std::fprintf(stderr,
                     "pim-run: interrupted; checkpoints in %s remain valid "
                     "— rerun with --resume\n",
                     opt.checkpoint_dir.c_str());
      } else {
        std::fprintf(stderr,
                     "pim-run: interrupted (no --checkpoint-dir; progress "
                     "not recoverable)\n");
      }
      throw;
    } catch (...) {
      // Flush whatever telemetry the run recorded before the error (the
      // engine watchdog already flushed on a stall; this covers the rest).
      if (trace_json || metrics_out) {
        session.tracer().disable();
        try {
          session.flush();
        } catch (...) {
        }
      }
      throw;
    }
  }();
  if (!opt.checkpoint_dir.empty()) {
    std::error_code marker_ec;
    std::filesystem::remove(opt.checkpoint_dir + "/partial.run", marker_ec);
  }

  TextTable table("PIM-Assembler simulated execution");
  table.set_header({"stage", "commands", "time (us)", "energy (nJ)",
                    "sub-arrays"});
  for (const auto* stage :
       {&result.hashmap, &result.debruijn, &result.traverse})
    table.add_row({stage->name, std::to_string(stage->device.commands),
                   TextTable::num(stage->device.time_ns / 1e3, 4),
                   TextTable::num(stage->device.energy_pj / 1e3, 4),
                   std::to_string(stage->device.subarrays_used)});
  std::fputs(table.render().c_str(), stdout);
  if (fault_aware) {
    const auto& fs = result.fault_stats;
    TextTable ft("fault-aware execution report");
    ft.set_header({"injected", "detected", "retried", "remapped",
                   "host-fallback", "escaped"});
    ft.add_row({std::to_string(fs.injected), std::to_string(fs.detected),
                std::to_string(fs.retried), std::to_string(fs.remapped),
                std::to_string(fs.host_fallbacks),
                std::to_string(fs.escaped)});
    std::fputs(ft.render().c_str(), stdout);
    if (fs.degraded_subarrays > 0)
      std::printf(
          "degraded: %zu sub-array(s) over the failure budget fell back "
          "to host recompute\n",
          fs.degraded_subarrays);
  }
  std::printf("contigs: %zu, N50 %zu bp\n", result.contig_stats.count,
              result.contig_stats.n50);
  if (dump_trace) {
    // result.trace is the pool-merged capture (logical flat order) — for
    // any --devices value it replays like a single-device run.
    fsio::atomic_write_file(*dump_trace, dram::to_text(result.trace),
                            "artifact");
    std::printf("trace: %zu commands -> %s\n", result.trace.size(),
                dump_trace->c_str());
  }
  if (trace_json || metrics_out) {
    session.tracer().disable();
    session.flush();
    if (trace_json)
      std::printf("telemetry: %zu trace events -> %s (open in Perfetto)\n",
                  session.tracer().event_count(), trace_json->c_str());
    if (metrics_out)
      std::printf("telemetry: metrics -> %s (+ %s.json)\n",
                  metrics_out->c_str(), metrics_out->c_str());
  }
  if (const auto ref = args.get("reference"))
    report_verification(*ref, result.contigs, 2 * opt.k);
  return 0;
}

int cmd_spectrum(const Args& args) {
  const auto reads = load_reads(args.require("reads"));
  const std::size_t k = args.get_size("k", 21);
  const auto spec = assembly::compute_spectrum(
      assembly::build_hashmap(reads, k),
      static_cast<std::uint32_t>(args.get_size("max-freq", 64)));
  const auto a = assembly::analyze_spectrum(spec);
  std::printf("k=%zu  distinct=%llu  total=%llu\n", k,
              static_cast<unsigned long long>(spec.distinct_kmers),
              static_cast<unsigned long long>(spec.total_kmers));
  std::printf(
      "error cutoff: %u   coverage peak: %u   genome size ~%.0f bp   "
      "error k-mers: %.1f%%\n",
      a.error_cutoff, a.coverage_peak, a.genome_size_estimate,
      100.0 * a.error_kmer_fraction);
  TextTable table("k-mer frequency histogram");
  table.set_header({"freq", "distinct k-mers"});
  for (std::uint32_t f = 1; f < spec.histogram.size(); ++f)
    if (spec.histogram[f] > 0)
      table.add_row({std::to_string(f), std::to_string(spec.histogram[f])});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_project(const Args& args) {
  core::WorkloadParams w;
  w.k = args.get_size("k", 16);
  TextTable table("chr14 full-scale projection (paper Fig. 9 configuration)");
  table.set_header({"platform", "hashmap (s)", "deBruijn (s)",
                    "traverse (s)", "total (s)", "power (W)"});
  for (const auto& p : platforms::application_platforms()) {
    const auto cost = core::estimate_application(p, w);
    table.add_row({p.name, TextTable::num(cost.hashmap.time_s, 4),
                   TextTable::num(cost.debruijn.time_s, 4),
                   TextTable::num(cost.traverse.time_s, 4),
                   TextTable::num(cost.total_time_s, 4),
                   TextTable::num(cost.avg_power_w, 4)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

// ---- assembly service (DESIGN.md §12) ----

int cmd_serve(const Args& args) {
  service::DaemonOptions opt;
  opt.state_dir = args.require("state-dir");
  opt.socket_path =
      args.get("socket").value_or(opt.state_dir + "/pima.sock");
  opt.tcp_port = static_cast<std::uint16_t>(
      get_bounded_size(args, "tcp", 0, 0, 65535));
  opt.http_port = static_cast<std::uint16_t>(
      get_bounded_size(args, "http", 0, 0, 65535));
  opt.admission.max_jobs = get_bounded_size(args, "max-jobs", 2, 1, 64);
  opt.admission.queue_depth =
      get_bounded_size(args, "queue-depth", 8, 1, 4096);
  opt.admission.channel_budget =
      get_bounded_size(args, "channel-budget", 8, 1, 4096);
  opt.max_connections = get_bounded_size(args, "max-conns", 64, 1, 4096);
  // Same default geometry as `pim-run`, so service jobs are bit-identical
  // to standalone runs of the same spec.
  opt.geometry.rows = get_bounded_size(args, "rows", 512, 16, 65536);
  opt.geometry.columns = 256;
  opt.geometry.subarrays_per_mat = 16;
  opt.geometry.mats_per_bank = 4;
  opt.geometry.banks = 2;

  std::error_code ec;
  std::filesystem::create_directories(opt.state_dir, ec);
  if (ec)
    throw IoError("cannot create state dir " + opt.state_dir + ": " +
                  ec.message());

  // Same observability plumbing as pim-run: NDJSON log sink on request,
  // flight recorder armed into the state dir.
  if (const auto log_json = args.get("log-json"))
    telemetry::Logger::instance().set_json_path(*log_json);
  auto& flight = telemetry::FlightRecorder::instance();
  flight.set_output_path(opt.state_dir + "/crash_report.json");
  flight.install_fatal_signal_handlers();

  service::Daemon daemon(opt);
  g_daemon.store(&daemon, std::memory_order_release);
  install_termination_handlers();
  std::printf("serve: listening on %s", opt.socket_path.c_str());
  if (opt.tcp_port != 0) std::printf(" and 127.0.0.1:%u", opt.tcp_port);
  if (opt.http_port != 0)
    std::printf(" and http://127.0.0.1:%u (GET /metrics /healthz /jobs)",
                opt.http_port);
  std::printf(" (max-jobs %zu, queue-depth %zu, channel-budget %zu)\n",
              opt.admission.max_jobs, opt.admission.queue_depth,
              opt.admission.channel_budget);
  std::fflush(stdout);
  try {
    daemon.run();
  } catch (...) {
    // Detach the signal handler's pointer before the daemon destructs,
    // even on the error path.
    g_daemon.store(nullptr, std::memory_order_release);
    throw;
  }
  g_daemon.store(nullptr, std::memory_order_release);
  std::printf("serve: shut down cleanly\n");
  return 0;
}

/// Client-side deadline: bounds the connect AND every wait for a response
/// line. 0 (the default) preserves wait-forever; expiry raises
/// DeadlineExceededError → exit code 9.
double client_timeout(const Args& args) {
  return get_bounded_double(args, "timeout", 0.0, 0.0, 86'400.0);
}

service::Client connect_client(const Args& args) {
  const double timeout_s = client_timeout(args);
  const std::size_t port = get_bounded_size(args, "tcp", 0, 0, 65535);
  if (port != 0)
    return service::Client::connect_tcp_port(static_cast<std::uint16_t>(port),
                                             timeout_s);
  return service::Client::connect_unix_socket(args.require("socket"),
                                              timeout_s);
}

/// One request over a fresh connection, retried up to `--retries` times on
/// IoError (transport broke: daemon restarting, connection refused, peer
/// hung up) with exponential backoff + jitter. Only IoError retries:
/// DeadlineExceededError means the caller's budget is spent (exit 9 now),
/// and daemon-side errors arrive as ok=false responses, not exceptions.
/// Callers must only route idempotent requests here — submits carry an
/// idempotency_key, so a retry after an ambiguous failure cannot double-run.
service::Json request_with_retries(const Args& args, const service::Json& req) {
  const std::size_t retries = get_bounded_size(args, "retries", 0, 0, 100);
  std::mt19937_64 rng{std::random_device{}()};
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      auto client = connect_client(args);
      return client.request(req);
    } catch (const IoError& e) {
      if (attempt >= retries) throw;
      // Exponential backoff, 100 ms * 2^attempt capped at 2 s, with
      // uniform jitter in [0.5, 1.5) to de-synchronise retry herds.
      const double base_ms = std::min(100.0 * std::pow(2.0, double(attempt)),
                                      2000.0);
      const double jitter =
          0.5 + std::uniform_real_distribution<double>(0.0, 1.0)(rng);
      std::fprintf(stderr,
                   "pima_asm: %s — retrying (%zu/%zu left) in %.0f ms\n",
                   e.what(), retries - attempt, retries, base_ms * jitter);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(base_ms * jitter));
    }
  }
}

/// Client-generated random dedupe token for submit retries (16 hex bytes).
std::string generate_idempotency_key() {
  std::random_device rd;
  std::mt19937_64 rng{(std::uint64_t(rd()) << 32) | rd()};
  static constexpr char kHex[] = "0123456789abcdef";
  std::string key = "ck-";
  for (int i = 0; i < 32; ++i) key += kHex[rng() & 0xf];
  return key;
}

/// Maps a daemon error response to the documented process exit codes, so
/// `pima_asm submit` against a full queue exits 8 exactly like an
/// in-process AdmissionRejectedError would.
int response_exit_code(const service::Json& response) {
  if (response.get_bool("ok", false)) return 0;
  const std::string error = response.get_string("error");
  if (error == "AdmissionRejectedError") return kExitAdmissionRejected;
  if (error == "InputFormatError") return kExitInputFormat;
  if (error == "IoError") return kExitIo;
  if (error == "CancelledError") return kExitInterrupted;
  if (error == "EngineStalledError") return kExitEngineStalled;
  if (error == "DeadlineExceededError") return kExitDeadlineExceeded;
  return 1;
}

int print_response(const service::Json& response) {
  std::printf("%s\n", response.dump().c_str());
  return response_exit_code(response);
}

int follow_job(service::Client& client, const std::string& job_id) {
  service::Json req = service::Json::object();
  req.set("verb", "status");
  req.set("job", job_id);
  req.set("follow", true);
  const service::Json last = client.stream(req, [](const service::Json& line) {
    std::printf("%s\n", line.dump().c_str());
    std::fflush(stdout);
    return true;
  });
  if (!last.get_bool("ok", false)) return response_exit_code(last);
  const std::string state = last.get_string("state");
  if (state == "done") return 0;
  if (state == "cancelled") return kExitInterrupted;
  return state == "failed" ? 1 : 0;
}

int cmd_submit(const Args& args) {
  service::Json req = service::Json::object();
  req.set("verb", "submit");
  // The daemon opens the file itself (shared host): submit an absolute
  // path so a daemon started from another directory resolves it.
  req.set("reads",
          std::filesystem::absolute(args.require("reads")).string());
  req.set("k", get_bounded_size(args, "k", 17, 4, 64));
  req.set("shards", get_bounded_size(args, "shards", 16, 1, 4096));
  req.set("threads", get_bounded_size(args, "threads", 1, 1, 1024));
  req.set("devices", get_bounded_size(args, "devices", 1, 1, 64));
  // --isolate asks the daemon to run the job's device shards in pima_devd
  // worker processes ("isolation": "process"); the job still charges the
  // same admission budgets.
  if (args.has("isolate")) req.set("isolation", "process");
  if (args.has("euler")) req.set("euler", true);
  req.set("priority",
          static_cast<std::int64_t>(args.get_double("priority", 0.0)));
  req.set("stall_timeout_ms",
          get_bounded_double(args, "stall-timeout", 0.0, 0.0, 86'400'000.0));
  // Every submit carries a dedupe token, so a retried submit (here or by a
  // wrapping script) lands on the SAME job — the daemon answers duplicates
  // with the original job's status plus "deduped": true.
  req.set("idempotency_key",
          args.get("idempotency-key").value_or(generate_idempotency_key()));

  const service::Json response = request_with_retries(args, req);
  const int code = print_response(response);
  if (code != 0 || !args.has("follow")) return code;
  auto client = connect_client(args);
  return follow_job(client, response.get_string("job"));
}

int cmd_status(const Args& args) {
  if (args.has("follow")) {
    auto client = connect_client(args);
    return follow_job(client, args.require("job"));
  }
  service::Json req = service::Json::object();
  req.set("verb", "status");
  req.set("job", args.require("job"));
  return print_response(request_with_retries(args, req));
}

int cmd_result(const Args& args) {
  service::Json req = service::Json::object();
  req.set("verb", "result");
  req.set("job", args.require("job"));
  const auto out = args.get("out");
  if (out) req.set("fetch", true);
  service::Json response = request_with_retries(args, req);
  if (out && response.get_bool("ok", false)) {
    // Atomic: a crash (or injected fault) mid-save never leaves a
    // truncated contigs file where a previous good one stood.
    fsio::atomic_write_file(*out, response.get_string("fasta"), "artifact");
    response.set("fasta", service::Json());  // don't echo the payload
    response.set("saved_to", *out);
  }
  return print_response(response);
}

int cmd_cancel(const Args& args) {
  service::Json req = service::Json::object();
  req.set("verb", "cancel");
  req.set("job", args.require("job"));
  // Cancel is idempotent (cancelling a terminal job is a no-op status
  // echo), so it may retry like the read-only verbs.
  return print_response(request_with_retries(args, req));
}

int cmd_list(const Args& args) {
  service::Json req = service::Json::object();
  req.set("verb", "list");
  return print_response(request_with_retries(args, req));
}

int cmd_drain(const Args& args) {
  // NOT retried: drain initiates daemon shutdown — a retry after an
  // ambiguous failure would race the daemon it just stopped.
  service::Json req = service::Json::object();
  req.set("verb", "drain");
  auto client = connect_client(args);
  return print_response(client.request(req));
}

int cmd_metrics(const Args& args) {
  service::Json req = service::Json::object();
  req.set("verb", "metrics");
  req.set("format", args.get("format").value_or("prometheus"));
  // --watch N: clear the screen and re-poll every N seconds until
  // interrupted (a poor man's `watch pima_asm metrics`). Ctrl-C exits 0 —
  // leaving a watch is not a failure.
  const double watch_s = get_bounded_double(args, "watch", 0.0, 0.0, 86'400.0);
  if (watch_s > 0.0 && args.get("out"))
    Args::fail("--watch and --out are mutually exclusive");
  if (watch_s > 0.0) install_termination_handlers();
  for (;;) {
    const service::Json response = request_with_retries(args, req);
    if (!response.get_bool("ok", false)) return print_response(response);
    const std::string body = response.get_string("body");
    if (const auto out = args.get("out")) {
      fsio::atomic_write_file(*out, body, "artifact");
      std::printf("metrics: wrote %zu bytes to %s\n", body.size(),
                  out->c_str());
    } else {
      if (watch_s > 0.0) std::fputs("\x1b[H\x1b[2J", stdout);
      std::fputs(body.c_str(), stdout);
      std::fflush(stdout);
    }
    if (watch_s <= 0.0) break;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(watch_s);
    while (std::chrono::steady_clock::now() < deadline) {
      if (g_run_cancel.requested()) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (g_run_cancel.requested()) return 0;
  }
  return 0;
}

void usage() {
  std::puts(
      "usage: pima_asm <command> [--flags]\n"
      "  generate --genome <out.fa> --reads <out.fa> [--length N]\n"
      "           [--coverage C] [--read-length L] [--errors RATE]\n"
      "           [--repeats N] [--gc F] [--seed N]\n"
      "  assemble --reads <in.fa> [--k K] [--min-freq N] [--simplify]\n"
      "           [--euler] [--out contigs.fa] [--reference genome.fa]\n"
      "  pim-run  --reads <in.fa> [--k K] [--shards N] [--euler]\n"
      "           [--threads N (default: hardware concurrency)]\n"
      "           [--devices N (shard over N simulated devices;\n"
      "            outputs bit-identical for any N)]\n"
      "           [--isolate (each device shard in its own pima_devd\n"
      "            worker process; crashes are contained + restarted)]\n"
      "           [--restart-budget N (worker restarts before the run\n"
      "            degrades to in-process; default 3)]\n"
      "           [--devd-path BIN (pima_devd binary; default: alongside\n"
      "            pima_asm or $PIMA_DEVD_PATH)]\n"
      "           [--reference genome.fa]\n"
      "           [--fault-variation F (e.g. 0.10 = ±10% Table I)]\n"
      "           [--fault-seed N] [--fault-retention P]\n"
      "           [--fault-weak-rows F] [--recovery off|retry|vote]\n"
      "           [--max-retries N] [--failure-budget N]\n"
      "           [--dump-trace trace.aap (replay: pima_fuzz --replay)]\n"
      "           [--checkpoint-dir DIR (snapshot after each stage)]\n"
      "           [--resume (skip stages covered by DIR/pipeline.ckpt)]\n"
      "           [--stall-timeout MS (watchdog per-task deadline; 0=off)]\n"
      "           [--trace-json out.json (Chrome trace for Perfetto;\n"
      "            with --isolate: one stitched trace, all processes)]\n"
      "           [--metrics-out out.prom (Prometheus text + .json)]\n"
      "           [--progress [SECONDS] (periodic stderr status; default 1)]\n"
      "           [--log-json PATH|- (structured NDJSON event log;\n"
      "            - = stdout; stderr keeps the human rendering)]\n"
      "  spectrum --reads <in.fa> [--k K] [--max-freq N]\n"
      "  project  [--k K]\n"
      "  serve    --state-dir DIR [--socket PATH (default DIR/pima.sock)]\n"
      "           [--tcp PORT] [--max-jobs N] [--queue-depth N]\n"
      "           [--channel-budget N] [--max-conns N] [--rows N]\n"
      "           [--http PORT (GET /metrics, /healthz, /jobs on\n"
      "            loopback; /metrics == the metrics verb, byte for byte)]\n"
      "           [--log-json PATH|- (structured NDJSON event log)]\n"
      "  submit   --socket PATH|--tcp PORT --reads <in.fa> [--k K]\n"
      "           [--shards N] [--threads N] [--devices N] [--euler]\n"
      "           [--isolate (run the job's device shards in worker\n"
      "            processes: \"isolation\": \"process\")]\n"
      "           [--priority P]\n"
      "           [--stall-timeout MS] [--follow]\n"
      "           [--idempotency-key KEY (dedupe token; default: random)]\n"
      "  status   --socket PATH|--tcp PORT --job ID [--follow]\n"
      "  result   --socket PATH|--tcp PORT --job ID [--out contigs.fa]\n"
      "  cancel   --socket PATH|--tcp PORT --job ID\n"
      "  list     --socket PATH|--tcp PORT\n"
      "  drain    --socket PATH|--tcp PORT\n"
      "  metrics  --socket PATH|--tcp PORT [--format prometheus|json]\n"
      "           [--out PATH] [--watch SECONDS (re-poll + redraw until\n"
      "            interrupted)]\n"
      "client verbs also accept:\n"
      "  --timeout S   bound connect + each response wait (exit 9 on expiry)\n"
      "  --retries N   retry transport failures with backoff + jitter\n"
      "                (all verbs except drain; submits dedupe via the key)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    // Force the PIMA_IOFAULT parse now: a malformed spec surfaces as a
    // typed InputFormatError (exit 3) before any work starts, instead of
    // aborting mid-run inside the first wrapped syscall.
    pima::fsio::load_env_plan();
    const Args args(argc, argv, 2);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "assemble") return cmd_assemble(args);
    if (cmd == "pim-run") return cmd_pim_run(args);
    if (cmd == "spectrum") return cmd_spectrum(args);
    if (cmd == "project") return cmd_project(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "submit") return cmd_submit(args);
    if (cmd == "status") return cmd_status(args);
    if (cmd == "result") return cmd_result(args);
    if (cmd == "cancel") return cmd_cancel(args);
    if (cmd == "list") return cmd_list(args);
    if (cmd == "drain") return cmd_drain(args);
    if (cmd == "metrics") return cmd_metrics(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pima_asm: %s\n", e.what());
    // Documented exit codes (see DESIGN.md §10): 3 = malformed input,
    // 4 = I/O failure, 5 = corrupt/incompatible checkpoint, 6 = engine
    // stall, 1 = anything else.
    return pima::exit_code_for(e);
  }
  usage();
  return 2;
}
